package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/circuit"
	"repro/internal/core"
)

// TCS2: the compact, mmap-able circuit envelope.
//
// The paper's constructions stamp the same gate pattern at every block
// position, so across millions of gate groups the *relative* wire
// pattern of a span (ids minus the first id) and the weight vector
// repeat massively; thresholds repeat as whole per-group sequences. A
// TCS2 file therefore stores three deduplicated dictionaries as raw
// little-endian arenas — which an mmap-backed load aliases in place,
// no decode of the hot arrays — plus a few bytes of varint-encoded
// references per group.
//
// Layout:
//
//	header:
//	  magic "TCS2" | u32 version (=2) | u32 keyLen | shape key
//	  counts block, 12 u64: numInputs numGates numGroups numOutputs
//	    storedEdges depth weightWords threshPatWords wirePatWords
//	    numWeightSpans numThreshPats numWirePats
//	  u32 numSegments | u32 metaLen | BuiltMeta (appendMeta layout)
//	  dictionary length tables (uvarint per entry, three tables)
//	  segment directory: per segment u8 kind | u8 level | u16 0 |
//	    u32 count | u64 byteLen
//	  zero padding to an 8-byte boundary (nonzero padding is rejected)
//	payload (8-aligned regions, in kind order):
//	  weight arena (i64) | threshold-pattern arena (i64) |
//	  wire-pattern arena (i32, relative ids) |
//	  spine (one level byte per group, creation order) |
//	  per-level group streams (varint records) | outputs (zigzag deltas)
//	footer:
//	  per-segment CRC-32C table | SHA-256 root over header‖table |
//	  u64 headerLen | u64 payloadLen | u32 numSegments | u32 0 | "2SCT"
//
// A group record, inside its level's stream, is four varints: wire
// pattern id, weight span id, threshold pattern id, and the zigzag
// delta of the group's wire base (the absolute id of its first input)
// against the previous record in the same segment — the first record
// of a segment stores the absolute base, so every segment decodes
// independently. Span length, gate count and level are all implied
// (pattern lengths, threshold pattern length, stream identity), which
// is what gets the per-group cost to ~6 bytes.
//
// Integrity is a two-level digest tree, consistent with the package's
// TCS1 philosophy (the content address authenticates *which* artifact;
// checksums catch bit rot at disk bandwidth): CRC-32C leaves over every
// payload segment — independently checkable, so incremental verifiers
// can audit a page range without touching the rest — rolled into one
// SHA-256 root over the header and the leaf table. Any flipped bit in
// any segment changes its leaf; any tampered leaf or header byte
// changes the root. The whole-file pass runs at hardware CRC speed
// (~10 GB/s), not hash speed, which is what keeps the mapped load
// inside its 20x-over-build budget.

const (
	tcs2Magic     = "TCS2"
	tcs2TailMagic = "2SCT"

	// FormatVersionTCS2 is the current envelope version; it feeds the
	// cache fingerprint, so TCS2 artifacts live under different content
	// addresses than their TCS1 ancestors and migration is a cache-miss
	// fallback, never a misread.
	FormatVersionTCS2 = 2

	// maxDepthTCS2 bounds the spine's level byte. The paper's circuits
	// are constant-depth (<= 10); anything deeper than 255 is not a
	// threshold circuit this reproduction can produce.
	maxDepthTCS2 = 255

	// arenaChunk / streamChunk size the integrity segments: small enough
	// that a damaged region is localized to one leaf, large enough that
	// the directory stays a few dozen rows at N=16.
	arenaChunk  = 4 << 20
	streamChunk = 1 << 20

	tcs2CountsLen = 12 * 8
	tcs2DirRowLen = 16
	tcs2TailLen   = 32 + 8 + 8 + 4 + 4 + 4 // root | headerLen | payloadLen | segs | 0 | magic

	segKindWeights   = 1
	segKindThreshPat = 2
	segKindWirePat   = 3
	segKindSpine     = 4
	segKindGroups    = 5
	segKindOutputs   = 6

	// maxExpandFactor caps decode-side allocation relative to file size:
	// dictionary compression is quadratic in the adversarial limit (a
	// tiny file can legally reference a huge pattern from every group),
	// so gate expansion is bounded at 64 elements per envelope byte —
	// two orders of magnitude above the measured legitimate ratio
	// (~0.07 gates/byte at N=16) — before any allocation happens.
	maxExpandFactor = 64
)

type tcs2Segment struct {
	kind  byte
	level byte
	count uint32
	size  int64
}

// zigzag/unzigzag map signed deltas onto uvarints.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodeTCS2 serializes a Built into the TCS2 envelope. Encoding is
// deterministic — dictionaries are interned in first-use order over the
// creation-order group walk — so concurrent writers of the same shape
// produce identical bytes, preserving the cache's idempotent-writer
// contract.
func EncodeTCS2(b *core.Built) ([]byte, error) {
	c := b.Circuit()
	if c.Depth() > maxDepthTCS2 {
		return nil, fmt.Errorf("store: tcs2 encodes depth <= %d, circuit has %d", maxDepthTCS2, c.Depth())
	}
	key := b.Shape.Key()
	meta := appendMeta(nil, b.Meta())

	// Pass 1: intern dictionaries, collect per-group references.
	type ref struct {
		wp, ws, tp uint32
		base       int32
		level      uint8
	}
	var (
		weightArena []int64
		wsLens      []uint32
		wsIdx       = map[string]uint32{}
		threshArena []int64
		tpLens      []uint32
		tpIdx       = map[string]uint32{}
		wireArena   []int32
		wpLens      []uint32
		wpIdx       = map[string]uint32{}
		refs        = make([]ref, 0, 1024)
		relBuf      []int32
	)
	internI64 := func(idx map[string]uint32, vs []int64, arena *[]int64, lens *[]uint32) uint32 {
		k := string(i64Bytes(vs))
		if id, ok := idx[k]; ok {
			return id
		}
		id := uint32(len(*lens))
		idx[k] = id
		*arena = append(*arena, vs...)
		*lens = append(*lens, uint32(len(vs)))
		return id
	}
	c.VisitGroups(func(gv circuit.GroupView) {
		if cap(relBuf) < len(gv.RawWires) {
			relBuf = make([]int32, len(gv.RawWires))
		}
		rel := relBuf[:len(gv.RawWires)]
		var base int32
		if len(gv.RawWires) > 0 {
			base = int32(gv.WireBase) + int32(gv.RawWires[0])
			for i, w := range gv.RawWires {
				rel[i] = int32(gv.WireBase) + int32(w) - base
			}
		}
		var wp uint32
		if k := string(i32Bytes(rel)); true {
			var ok bool
			if wp, ok = wpIdx[k]; !ok {
				wp = uint32(len(wpLens))
				wpIdx[k] = wp
				wireArena = append(wireArena, rel...)
				wpLens = append(wpLens, uint32(len(rel)))
			}
		}
		ws := internI64(wsIdx, gv.Weights, &weightArena, &wsLens)
		tp := internI64(tpIdx, gv.Thresholds, &threshArena, &tpLens)
		refs = append(refs, ref{wp: wp, ws: ws, tp: tp, base: base, level: uint8(gv.Level)})
	})

	// Pass 2: spine + per-level record streams, cut into segments at
	// record boundaries so each decodes (and verifies) independently.
	depth := c.Depth()
	spine := make([]byte, len(refs))
	streams := make([][]byte, depth+1)
	segStart := make([]int, depth+1) // current segment's byte offset
	segCount := make([]uint32, depth+1)
	prevBase := make([]int32, depth+1)
	type lvlSeg struct {
		level byte
		count uint32
		size  int64
	}
	lvlSegs := make([][]lvlSeg, depth+1)
	cut := func(lvl int) {
		if segCount[lvl] == 0 {
			return
		}
		lvlSegs[lvl] = append(lvlSegs[lvl], lvlSeg{
			level: byte(lvl),
			count: segCount[lvl],
			size:  int64(len(streams[lvl]) - segStart[lvl]),
		})
		segStart[lvl] = len(streams[lvl])
		segCount[lvl] = 0
	}
	for gi, r := range refs {
		spine[gi] = r.level
		lvl := int(r.level)
		s := streams[lvl]
		s = binary.AppendUvarint(s, uint64(r.wp))
		s = binary.AppendUvarint(s, uint64(r.ws))
		s = binary.AppendUvarint(s, uint64(r.tp))
		if segCount[lvl] == 0 {
			s = binary.AppendUvarint(s, zigzag(int64(r.base))) // absolute at segment start
		} else {
			s = binary.AppendUvarint(s, zigzag(int64(r.base)-int64(prevBase[lvl])))
		}
		prevBase[lvl] = r.base
		streams[lvl] = s
		segCount[lvl]++
		if len(s)-segStart[lvl] >= streamChunk {
			cut(lvl)
		}
	}
	for lvl := 1; lvl <= depth; lvl++ {
		cut(lvl)
	}

	var outStream []byte
	{
		var prev int64
		for _, o := range c.Outputs() {
			outStream = binary.AppendUvarint(outStream, zigzag(int64(o)-prev))
			prev = int64(o)
		}
	}

	// Directory: arena regions chunked for hash granularity, then the
	// byte-exact stream segments.
	var segs []tcs2Segment
	chunkArena := func(kind byte, totalBytes, elemSize int64) {
		for off := int64(0); off < totalBytes; {
			n := totalBytes - off
			if n > arenaChunk {
				n = arenaChunk
			}
			segs = append(segs, tcs2Segment{kind: kind, count: uint32(n / elemSize), size: n})
			off += n
		}
	}
	chunkArena(segKindWeights, int64(len(weightArena))*8, 8)
	chunkArena(segKindThreshPat, int64(len(threshArena))*8, 8)
	chunkArena(segKindWirePat, int64(len(wireArena))*4, 4)
	chunkArena(segKindSpine, int64(len(spine)), 1)
	for lvl := 1; lvl <= depth; lvl++ {
		for _, ls := range lvlSegs[lvl] {
			segs = append(segs, tcs2Segment{kind: segKindGroups, level: ls.level, count: ls.count, size: ls.size})
		}
	}
	if len(outStream) > 0 {
		segs = append(segs, tcs2Segment{kind: segKindOutputs, count: uint32(len(c.Outputs())), size: int64(len(outStream))})
	}

	// Header.
	var payloadLen int64
	for _, s := range segs {
		payloadLen += s.size
	}
	est := 64 + len(key) + len(meta) + 2*(len(wpLens)+len(wsLens)+len(tpLens)) + len(segs)*tcs2DirRowLen
	out := make([]byte, 0, int64(est)+payloadLen+int64(len(segs))*4+tcs2TailLen+64)
	out = append(out, tcs2Magic...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersionTCS2)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(key)))
	out = append(out, key...)
	for _, v := range []int64{
		int64(c.NumInputs()), int64(c.Size()), int64(len(refs)), int64(len(c.Outputs())),
		c.StoredEdges(), int64(depth),
		int64(len(weightArena)), int64(len(threshArena)), int64(len(wireArena)),
		int64(len(wsLens)), int64(len(tpLens)), int64(len(wpLens)),
	} {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(segs)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(meta)))
	out = append(out, meta...)
	for _, n := range wsLens {
		out = binary.AppendUvarint(out, uint64(n))
	}
	for _, n := range tpLens {
		out = binary.AppendUvarint(out, uint64(n))
	}
	for _, n := range wpLens {
		out = binary.AppendUvarint(out, uint64(n))
	}
	for _, s := range segs {
		out = append(out, s.kind, s.level, 0, 0)
		out = binary.LittleEndian.AppendUint32(out, s.count)
		out = binary.LittleEndian.AppendUint64(out, uint64(s.size))
	}
	for len(out)%8 != 0 {
		out = append(out, 0)
	}
	headerLen := int64(len(out))

	// Payload.
	out = appendI64s(out, weightArena)
	out = appendI64s(out, threshArena)
	out = appendI32s(out, wireArena)
	out = append(out, spine...)
	for lvl := 1; lvl <= depth; lvl++ {
		out = append(out, streams[lvl]...)
	}
	out = append(out, outStream...)
	if int64(len(out))-headerLen != payloadLen {
		panic("store: tcs2 payload size accounting broken")
	}

	// Footer: leaves, root, tail.
	tableOff := len(out)
	off := headerLen
	for _, s := range segs {
		sum := crc32.Checksum(out[off:off+s.size], crcTable)
		out = binary.LittleEndian.AppendUint32(out, sum)
		off += s.size
	}
	h := sha256.New()
	h.Write(out[:headerLen])
	h.Write(out[tableOff:])
	out = h.Sum(out)
	out = binary.LittleEndian.AppendUint64(out, uint64(headerLen))
	out = binary.LittleEndian.AppendUint64(out, uint64(payloadLen))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(segs)))
	out = binary.LittleEndian.AppendUint32(out, 0)
	out = append(out, tcs2TailMagic...)
	return out, nil
}

// DecodeTCS2 parses a TCS2 envelope into a Built, copying the arenas to
// the heap. This is the portable path (and the fuzz target); MapCircuit
// uses the same parser with in-place arena aliasing.
func DecodeTCS2(shape core.Shape, data []byte) (*core.Built, error) {
	return decodeTCS2(shape, data, false)
}

// decodeTCS2 validates and parses. With alias=true the wire and weight
// arenas of the resulting circuit alias data directly (zero copy of the
// hot arrays); the caller guarantees data outlives the circuit and is
// never written. Aliasing silently degrades to copying when the host is
// big-endian or the buffer is misaligned.
func decodeTCS2(shape core.Shape, data []byte, alias bool) (*core.Built, error) {
	env, err := parseTCS2Envelope(data)
	if err != nil {
		return nil, err
	}
	if want := shape.Key(); env.key != want {
		return nil, fmt.Errorf("%w: envelope is for shape %q, want %q", ErrCorrupt, env.key, want)
	}
	meta, err := decodeMeta(env.meta)
	if err != nil {
		return nil, fmt.Errorf("%w: metadata: %v", ErrCorrupt, err)
	}
	c, err := env.assemble(alias)
	if err != nil {
		return nil, err
	}
	built, err := core.RestoreBuilt(shape, c, meta)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return built, nil
}

// tcs2Envelope is a parsed-and-verified view into a TCS2 byte buffer:
// every offset has been bounds-checked, every segment CRC verified and
// the root digest recomputed before any field is populated.
type tcs2Envelope struct {
	data    []byte
	key     string
	meta    []byte
	root    [32]byte
	numSegs int

	numInputs, numGates, numGroups, numOutputs int64
	storedEdges, depth                         int64

	weightWords, threshWords, wireWords int64
	wsLens, tpLens, wpLens              []uint32

	segs       []tcs2Segment
	payloadOff int64

	// Region byte offsets within data, derived from the directory.
	weightOff, threshOff, wireOff, spineOff int64
	groupSegs                               []int // indices into segs, payload order
	outputsOff, outputsLen                  int64
}

// parseTCS2Envelope verifies integrity (root digest, then every segment
// leaf) and structure (counts, directory geometry, padding) without
// expanding anything. Damage and structural lies return ErrCorrupt;
// only a clean version-field mismatch returns ErrVersion.
func parseTCS2Envelope(data []byte) (*tcs2Envelope, error) {
	if len(data) < tcs2TailLen || string(data[len(data)-4:]) != tcs2TailMagic {
		return nil, fmt.Errorf("%w: not a TCS2 envelope (bad tail)", ErrCorrupt)
	}
	tail := data[len(data)-tcs2TailLen:]
	headerLen := int64(binary.LittleEndian.Uint64(tail[32:]))
	payloadLen := int64(binary.LittleEndian.Uint64(tail[40:]))
	numSegs := int64(binary.LittleEndian.Uint32(tail[48:]))
	if binary.LittleEndian.Uint32(tail[52:]) != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved tail field", ErrCorrupt)
	}
	minHeader := int64(4 + 4 + 4 + tcs2CountsLen + 4 + 4)
	if headerLen < minHeader || headerLen%8 != 0 || payloadLen < 0 || numSegs < 0 ||
		headerLen+payloadLen+4*numSegs+tcs2TailLen != int64(len(data)) {
		return nil, fmt.Errorf("%w: inconsistent envelope geometry (header %d, payload %d, %d segments, %d bytes)",
			ErrCorrupt, headerLen, payloadLen, numSegs, len(data))
	}
	header := data[:headerLen]
	table := data[headerLen+payloadLen : headerLen+payloadLen+4*numSegs]

	// Root first: nothing below is trusted until the digest matches.
	h := sha256.New()
	h.Write(header)
	h.Write(table)
	var root [32]byte
	h.Sum(root[:0])
	stored := tail[:32]
	if string(root[:]) != string(stored) {
		return nil, fmt.Errorf("%w: root digest mismatch", ErrCorrupt)
	}

	if string(header[:4]) != tcs2Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, header[:4])
	}
	if v := binary.LittleEndian.Uint32(header[4:]); v != FormatVersionTCS2 {
		return nil, fmt.Errorf("%w: file has format v%d, this build reads v%d", ErrVersion, v, FormatVersionTCS2)
	}
	env := &tcs2Envelope{data: data, root: root, numSegs: int(numSegs), payloadOff: headerLen}
	d := &decoder{data: header, off: 8}
	env.key = string(d.bytes(int64(d.u32())))
	var counts [12]int64
	for i := range counts {
		counts[i] = d.i64()
	}
	env.numInputs, env.numGates, env.numGroups, env.numOutputs = counts[0], counts[1], counts[2], counts[3]
	env.storedEdges, env.depth = counts[4], counts[5]
	env.weightWords, env.threshWords, env.wireWords = counts[6], counts[7], counts[8]
	numWS, numTP, numWP := counts[9], counts[10], counts[11]
	if int64(d.u32()) != numSegs {
		d.err = fmt.Errorf("segment count disagrees with tail")
	}
	env.meta = d.bytes(int64(d.u32()))
	if d.err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, d.err)
	}

	// Plausibility before any allocation. The arenas live in the payload
	// so their sizes are hard-bounded by it; expanded allocations (gates,
	// groups, outputs) are bounded by maxExpandFactor.
	budget := maxExpandFactor*int64(len(data)) + 1<<20
	switch {
	case env.numInputs < 0 || env.numGates < 0 || env.numGroups < 0 || env.numOutputs < 0,
		env.storedEdges < 0 || env.depth < 0 || env.depth > maxDepthTCS2,
		env.numInputs+env.numGates > int64(1)<<31-1,
		env.numGates > budget || env.numGroups > payloadLen || env.numOutputs > payloadLen,
		env.weightWords < 0 || env.threshWords < 0 || env.wireWords < 0,
		env.weightWords*8+env.threshWords*8+env.wireWords*4+env.numGroups > payloadLen,
		numWS < 0 || numTP < 0 || numWP < 0,
		numWS+numTP+numWP > headerLen: // one uvarint byte each, minimum
		return nil, fmt.Errorf("%w: implausible header counts", ErrCorrupt)
	}

	// Dictionary length tables. Each table's lengths must sum to its
	// arena's word count exactly.
	readLens := func(n, words int64, what string) []uint32 {
		if d.err != nil {
			return nil
		}
		lens := make([]uint32, n)
		var sum int64
		for i := range lens {
			v := d.uvarint()
			if v > uint64(words) {
				d.err = fmt.Errorf("%s length %d exceeds arena", what, v)
				return nil
			}
			lens[i] = uint32(v)
			sum += int64(v)
		}
		if d.err == nil && sum != words {
			d.err = fmt.Errorf("%s lengths sum to %d, arena holds %d", what, sum, words)
		}
		return lens
	}
	env.wsLens = readLens(numWS, env.weightWords, "weight span")
	env.tpLens = readLens(numTP, env.threshWords, "threshold pattern")
	env.wpLens = readLens(numWP, env.wireWords, "wire pattern")
	if d.err != nil {
		return nil, fmt.Errorf("%w: dictionary tables: %v", ErrCorrupt, d.err)
	}

	// Directory: kinds in region order, sizes covering the payload
	// exactly, arena chunks summing to their region sizes.
	if int64(len(header))-int64(d.off) < numSegs*tcs2DirRowLen {
		return nil, fmt.Errorf("%w: directory truncated", ErrCorrupt)
	}
	env.segs = make([]tcs2Segment, numSegs)
	var (
		prevKind  byte
		kindBytes [segKindOutputs + 1]int64
		grpRecs   int64
	)
	off := headerLen
	for i := range env.segs {
		row := header[d.off : d.off+tcs2DirRowLen]
		d.off += tcs2DirRowLen
		s := tcs2Segment{
			kind:  row[0],
			level: row[1],
			count: binary.LittleEndian.Uint32(row[4:]),
			size:  int64(binary.LittleEndian.Uint64(row[8:])),
		}
		if row[2] != 0 || row[3] != 0 {
			return nil, fmt.Errorf("%w: nonzero reserved directory bytes", ErrCorrupt)
		}
		if s.kind < segKindWeights || s.kind > segKindOutputs || s.kind < prevKind {
			return nil, fmt.Errorf("%w: segment %d kind %d out of order", ErrCorrupt, i, s.kind)
		}
		if s.size < 0 || off+s.size > headerLen+payloadLen {
			return nil, fmt.Errorf("%w: segment %d overruns payload", ErrCorrupt, i)
		}
		if s.kind == segKindGroups {
			if s.level < 1 || int64(s.level) > env.depth || s.count == 0 {
				return nil, fmt.Errorf("%w: group segment %d has level %d, %d records", ErrCorrupt, i, s.level, s.count)
			}
			grpRecs += int64(s.count)
			env.groupSegs = append(env.groupSegs, i)
		} else if s.level != 0 {
			return nil, fmt.Errorf("%w: segment %d kind %d carries a level", ErrCorrupt, i, s.kind)
		}
		switch s.kind {
		case segKindWeights:
			env.weightOff = off - int64(kindBytes[s.kind])
		case segKindThreshPat:
			env.threshOff = off - int64(kindBytes[s.kind])
		case segKindWirePat:
			env.wireOff = off - int64(kindBytes[s.kind])
		case segKindSpine:
			env.spineOff = off - int64(kindBytes[s.kind])
		case segKindOutputs:
			env.outputsOff = off - int64(kindBytes[s.kind])
		}
		kindBytes[s.kind] += s.size
		env.segs[i] = s
		prevKind = s.kind
		off += s.size
	}
	if off != headerLen+payloadLen {
		return nil, fmt.Errorf("%w: directory covers %d payload bytes, have %d", ErrCorrupt, off-headerLen, payloadLen)
	}
	if kindBytes[segKindWeights] != env.weightWords*8 ||
		kindBytes[segKindThreshPat] != env.threshWords*8 ||
		kindBytes[segKindWirePat] != env.wireWords*4 ||
		kindBytes[segKindSpine] != env.numGroups ||
		grpRecs != env.numGroups {
		return nil, fmt.Errorf("%w: directory regions disagree with header counts", ErrCorrupt)
	}
	env.outputsLen = kindBytes[segKindOutputs]
	// Default the region offsets of empty regions to the position they
	// would occupy, so slicing them yields empty slices, not garbage.
	regionEnd := headerLen
	for kind := byte(segKindWeights); kind <= segKindOutputs; kind++ {
		if kindBytes[kind] == 0 {
			switch kind {
			case segKindWeights:
				env.weightOff = regionEnd
			case segKindThreshPat:
				env.threshOff = regionEnd
			case segKindWirePat:
				env.wireOff = regionEnd
			case segKindSpine:
				env.spineOff = regionEnd
			case segKindOutputs:
				env.outputsOff = regionEnd
			}
		}
		regionEnd += kindBytes[kind]
	}
	// Header padding after the directory must be zero.
	for _, b := range header[d.off:] {
		if b != 0 {
			return nil, fmt.Errorf("%w: nonzero header padding", ErrCorrupt)
		}
	}

	// Leaves: every payload segment's CRC-32C, one sequential pass.
	off = headerLen
	for i, s := range env.segs {
		want := binary.LittleEndian.Uint32(table[4*i:])
		if got := crc32.Checksum(data[off:off+s.size], crcTable); got != want {
			return nil, fmt.Errorf("%w: segment %d (kind %d) checksum mismatch (have %08x, stored %08x)",
				ErrCorrupt, i, s.kind, got, want)
		}
		off += s.size
	}
	return env, nil
}

// assemble expands the verified envelope into a circuit. Hot arenas
// (wires, weights) alias the envelope bytes when alias is set and the
// platform allows it; everything else — group table, thresholds, spine
// expansion — is decoded onto the heap. All structural trust decisions
// are delegated to circuit.Assemble, which re-checks every span and
// wire bound at dictionary cost.
func (env *tcs2Envelope) assemble(alias bool) (*circuit.Circuit, error) {
	data := env.data
	weights := sliceI64(data[env.weightOff:env.weightOff+env.weightWords*8], alias)
	threshPats := sliceI64(data[env.threshOff:env.threshOff+env.threshWords*8], alias)
	wires := sliceI32(data[env.wireOff:env.wireOff+env.wireWords*4], alias)
	spine := data[env.spineOff : env.spineOff+env.numGroups]

	// Dictionary offsets from the length tables.
	wsOff := prefixSums(env.wsLens)
	tpOff := prefixSums(env.tpLens)
	wpOff := prefixSums(env.wpLens)

	raw := circuit.Raw{
		NumInputs:  int(env.numInputs),
		Wires:      wires,
		Weights:    weights,
		Thresholds: make([]int64, env.numGates),
		Groups:     make([]circuit.RawGroup, env.numGroups),
		Outputs:    make([]circuit.Wire, env.numOutputs),
	}

	// Per-level stream cursors over the group segments.
	type cursor struct {
		segIdx    []int // remaining segments for this level
		rec       []byte
		remaining uint32
		prevBase  int64
	}
	cursors := make([]cursor, env.depth+1)
	for _, si := range env.groupSegs {
		s := env.segs[si]
		cursors[s.level].segIdx = append(cursors[s.level].segIdx, si)
	}
	segOff := make([]int64, len(env.segs))
	{
		off := env.payloadOff
		for i, s := range env.segs {
			segOff[i] = off
			off += s.size
		}
	}

	var gateOff, edgeSum int64
	for gi := int64(0); gi < env.numGroups; gi++ {
		lvl := spine[gi]
		if lvl < 1 || int64(lvl) > env.depth {
			return nil, fmt.Errorf("%w: group %d has spine level %d", ErrCorrupt, gi, lvl)
		}
		cur := &cursors[lvl]
		if cur.remaining == 0 {
			if len(cur.rec) != 0 {
				return nil, fmt.Errorf("%w: trailing bytes in level-%d stream segment", ErrCorrupt, lvl)
			}
			if len(cur.segIdx) == 0 {
				return nil, fmt.Errorf("%w: level-%d stream exhausted at group %d", ErrCorrupt, lvl, gi)
			}
			si := cur.segIdx[0]
			cur.segIdx = cur.segIdx[1:]
			cur.rec = data[segOff[si] : segOff[si]+env.segs[si].size]
			cur.remaining = env.segs[si].count
			cur.prevBase = 0 // segment starts with an absolute base
		}
		wp, ok1 := readUvarint(&cur.rec)
		ws, ok2 := readUvarint(&cur.rec)
		tp, ok3 := readUvarint(&cur.rec)
		dz, ok4 := readUvarint(&cur.rec)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return nil, fmt.Errorf("%w: truncated group record %d", ErrCorrupt, gi)
		}
		if wp >= uint64(len(env.wpLens)) || ws >= uint64(len(env.wsLens)) || tp >= uint64(len(env.tpLens)) {
			return nil, fmt.Errorf("%w: group %d references unknown dictionary entry", ErrCorrupt, gi)
		}
		base := unzigzag(dz) + cur.prevBase
		cur.prevBase = base
		cur.remaining--
		n := int64(env.wpLens[wp])
		if int64(env.wsLens[ws]) != n {
			return nil, fmt.Errorf("%w: group %d wire pattern length %d != weight span length %d",
				ErrCorrupt, gi, n, env.wsLens[ws])
		}
		gc := int64(env.tpLens[tp])
		if gc < 1 || gateOff+gc > env.numGates {
			return nil, fmt.Errorf("%w: group %d gate count %d overruns %d gates", ErrCorrupt, gi, gc, env.numGates)
		}
		if base < -(int64(1)<<31) || base >= int64(1)<<31 {
			return nil, fmt.Errorf("%w: group %d wire base %d overflows int32", ErrCorrupt, gi, base)
		}
		copy(raw.Thresholds[gateOff:], threshPats[tpOff[tp]:tpOff[tp]+gc])
		raw.Groups[gi] = circuit.RawGroup{
			InStart:   wpOff[wp],
			InEnd:     wpOff[wp] + n,
			WOff:      wsOff[ws],
			GateCount: int32(gc),
			Level:     int32(lvl),
			WireBase:  circuit.Wire(base),
		}
		gateOff += gc
		edgeSum += n
	}
	if gateOff != env.numGates {
		return nil, fmt.Errorf("%w: groups cover %d gates, header claims %d", ErrCorrupt, gateOff, env.numGates)
	}
	if edgeSum != env.storedEdges {
		return nil, fmt.Errorf("%w: groups cover %d stored edges, header claims %d", ErrCorrupt, edgeSum, env.storedEdges)
	}
	for lvl := 1; lvl <= int(env.depth); lvl++ {
		cur := &cursors[lvl]
		if cur.remaining != 0 || len(cur.segIdx) != 0 || len(cur.rec) != 0 {
			return nil, fmt.Errorf("%w: level-%d stream not fully consumed", ErrCorrupt, lvl)
		}
	}

	outBytes := data[env.outputsOff : env.outputsOff+env.outputsLen]
	var prev int64
	for i := range raw.Outputs {
		dz, ok := readUvarint(&outBytes)
		if !ok {
			return nil, fmt.Errorf("%w: truncated outputs", ErrCorrupt)
		}
		v := unzigzag(dz) + prev
		prev = v
		if v < int64(-1)<<31 || v >= int64(1)<<31 {
			return nil, fmt.Errorf("%w: output wire %d overflows int32", ErrCorrupt, v)
		}
		raw.Outputs[i] = circuit.Wire(v)
	}
	if len(outBytes) != 0 {
		return nil, fmt.Errorf("%w: %d trailing output bytes", ErrCorrupt, len(outBytes))
	}

	c, err := circuit.Assemble(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if int64(c.Depth()) != env.depth {
		return nil, fmt.Errorf("%w: circuit depth %d, header claims %d", ErrCorrupt, c.Depth(), env.depth)
	}
	return c, nil
}

// readUvarint consumes one uvarint from *b, advancing it.
func readUvarint(b *[]byte) (uint64, bool) {
	v, n := binary.Uvarint(*b)
	if n <= 0 {
		return 0, false
	}
	*b = (*b)[n:]
	return v, true
}

func prefixSums(lens []uint32) []int64 {
	out := make([]int64, len(lens))
	var sum int64
	for i, n := range lens {
		out[i] = sum
		sum += int64(n)
	}
	return out
}

func appendI64s(out []byte, vs []int64) []byte {
	for _, v := range vs {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

func appendI32s(out []byte, vs []int32) []byte {
	for _, v := range vs {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	return out
}
