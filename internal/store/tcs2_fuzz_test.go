package store

import (
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"sync"
	"testing"

	"repro/internal/core"
)

// resealTCS2 recomputes the leaf table and root digest of a (possibly
// mutated) TCS2 envelope whose geometry is still self-consistent. This
// is the fuzzer's key: without it every mutation dies at the integrity
// wall and the structural validation behind it — directory geometry,
// dictionary tables, stream decoding, assembly — never gets exercised.
// The directory's position inside the header is recovered by trying
// each of the 8 possible padding widths and keeping the one whose
// segment sizes sum to the payload length.
func resealTCS2(data []byte) ([]byte, bool) {
	if len(data) < tcs2TailLen || string(data[len(data)-4:]) != tcs2TailMagic {
		return nil, false
	}
	tail := data[len(data)-tcs2TailLen:]
	headerLen := int64(binary.LittleEndian.Uint64(tail[32:]))
	payloadLen := int64(binary.LittleEndian.Uint64(tail[40:]))
	numSegs := int64(binary.LittleEndian.Uint32(tail[48:]))
	if headerLen < 24 || payloadLen < 0 || numSegs < 0 || numSegs > 1<<16 ||
		headerLen+payloadLen+4*numSegs+tcs2TailLen != int64(len(data)) {
		return nil, false
	}
	header := data[:headerLen]
	for pad := int64(0); pad < 8; pad++ {
		dirOff := headerLen - pad - numSegs*tcs2DirRowLen
		if dirOff < 0 {
			break
		}
		sizes := make([]int64, numSegs)
		sum := int64(0)
		for i := range sizes {
			sz := int64(binary.LittleEndian.Uint64(header[dirOff+int64(i)*tcs2DirRowLen+8:]))
			if sz < 0 || sz > payloadLen {
				sum = -1
				break
			}
			sizes[i] = sz
			sum += sz
		}
		if sum != payloadLen {
			continue
		}
		out := append([]byte(nil), data...)
		table := out[headerLen+payloadLen : headerLen+payloadLen+4*numSegs]
		off := headerLen
		for i, sz := range sizes {
			binary.LittleEndian.PutUint32(table[4*i:], crc32.Checksum(out[off:off+sz], crcTable))
			off += sz
		}
		h := sha256.New()
		h.Write(out[:headerLen])
		h.Write(table)
		copy(out[len(out)-tcs2TailLen:], h.Sum(nil))
		return out, true
	}
	return nil, false
}

var fuzzShape = core.Shape{Op: core.OpMatMul, N: 4, Alg: "strassen"}

var fuzzSeed = sync.OnceValues(func() ([]byte, error) {
	bt, err := core.BuildShape(fuzzShape, 0)
	if err != nil {
		return nil, err
	}
	return EncodeTCS2(bt)
})

// FuzzTCS2 hammers the decoder with mutated envelopes. The contract
// under test: any input either decodes to a valid Built or returns an
// error — never a panic, never unbounded allocation (the expansion
// budget), never an out-of-range access through the dictionary
// indirection. Each input is tried both raw (integrity wall) and
// resealed (structural wall).
func FuzzTCS2(f *testing.F) {
	seed, err := fuzzSeed()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // torn write
	f.Add(seed[:tcs2TailLen]) // tail only
	f.Add([]byte(tcs2Magic))  // magic only
	f.Add([]byte{})           // empty
	truncTail := append([]byte(nil), seed[len(seed)-tcs2TailLen:]...)
	f.Add(truncTail) // tail with no body
	flip := append([]byte(nil), seed...)
	flip[len(flip)/3] ^= 0x80
	f.Add(flip) // payload damage
	f.Fuzz(func(t *testing.T, data []byte) {
		if b, err := DecodeTCS2(fuzzShape, data); err == nil && b == nil {
			t.Fatal("nil Built without error")
		}
		if resealed, ok := resealTCS2(data); ok {
			if b, err := DecodeTCS2(fuzzShape, resealed); err == nil {
				if b == nil {
					t.Fatal("nil Built without error")
				}
				// Anything that decodes must re-encode without panicking.
				if _, err := EncodeTCS2(b); err != nil {
					t.Fatalf("accepted envelope failed to re-encode: %v", err)
				}
			}
		}
	})
}
