package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// tcs1Bytes canonicalizes a Built to its TCS1 envelope — the byte-level
// identity oracle: two Builts are the same circuit iff their TCS1
// encodings match (the codec is deterministic and expansion-normalizing).
func tcs1Bytes(t *testing.T, b *core.Built) []byte {
	t.Helper()
	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestTCS2RoundTrip(t *testing.T) {
	for _, shape := range testShapes() {
		t.Run(shape.Key(), func(t *testing.T) {
			bt, err := core.BuildShape(shape, 0)
			if err != nil {
				t.Fatal(err)
			}
			data, err := EncodeTCS2(bt)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := DecodeTCS2(shape, data)
			if err != nil {
				t.Fatal(err)
			}
			// Deterministic re-encode: the decoded circuit must reproduce
			// the exact envelope (dictionaries re-intern identically), so
			// concurrent writers stay idempotent across load generations.
			data2, err := EncodeTCS2(rt)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatal("TCS2 re-encode is not byte-identical")
			}
			// Cross-format identity: expanding the compact circuit yields
			// the same TCM1 bytes as the original.
			if !bytes.Equal(tcs1Bytes(t, bt), tcs1Bytes(t, rt)) {
				t.Fatal("TCS2 round-trip changed the circuit")
			}
			// Bit-identical evaluation.
			seed := rand.New(rand.NewSource(5)).Int63()
			a := evalBatch(t, bt.Circuit(), rand.New(rand.NewSource(seed)), 65)
			b := evalBatch(t, rt.Circuit(), rand.New(rand.NewSource(seed)), 65)
			for i := range a {
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Fatalf("sample %d output %d differs after TCS2 reload", i, j)
					}
				}
			}
		})
	}
}

func TestTCS2SmallerThanTCS1(t *testing.T) {
	// The 4x bar is asserted on the benchmarked N=16 artifact (see
	// cmd/tcbench's schema test); here just pin the direction at sizes
	// small enough for -short, where dictionary sharing already wins.
	shape := core.Shape{Op: core.OpMatMul, N: 8, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := Encode(bt)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := EncodeTCS2(bt)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2) >= len(v1) {
		t.Errorf("TCS2 %d bytes is not smaller than TCS1 %d bytes", len(v2), len(v1))
	}
}

func TestTCS2MappedMatchesHeap(t *testing.T) {
	shape := core.Shape{Op: core.OpMatMul, N: 8, Alg: "strassen", EntryBits: 2, Signed: true}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeTCS2(bt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "artifact.tcs")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := MapCircuit(path, shape)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if mmapSupported && !m.Mapped() {
		t.Error("mmap-capable platform fell back to the heap decode")
	}
	heap, err := DecodeTCS2(shape, data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tcs1Bytes(t, m.Built()), tcs1Bytes(t, heap)) {
		t.Fatal("mapped circuit differs from heap-decoded circuit")
	}
	seed := rand.New(rand.NewSource(9)).Int63()
	a := evalBatch(t, m.Built().Circuit(), rand.New(rand.NewSource(seed)), 65)
	b := evalBatch(t, heap.Circuit(), rand.New(rand.NewSource(seed)), 65)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("sample %d output %d differs between mapped and heap load", i, j)
			}
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// Every byte flip anywhere in the envelope — header, any payload
// segment, leaf table, root, tail — must be rejected, never mis-loaded.
func TestTCS2FaultInjectionFlippedBytes(t *testing.T) {
	shape := core.Shape{Op: core.OpTrace, N: 4, Tau: 6, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodeTCS2(bt)
	if err != nil {
		t.Fatal(err)
	}
	offsets := map[int]bool{}
	for i := 0; i < len(good) && i < 256; i++ {
		offsets[i] = true
	}
	for i := 256; i < len(good); i += 97 {
		offsets[i] = true
	}
	for i := len(good) - tcs2TailLen - 8; i < len(good); i++ {
		if i >= 0 {
			offsets[i] = true
		}
	}
	for off := range offsets {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x41
		if _, err := DecodeTCS2(shape, bad); err == nil {
			t.Fatalf("flipped byte at %d accepted", off)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipped byte at %d: error %v does not wrap ErrCorrupt", off, err)
		}
	}
}

// Segment-level detection: damage inside each payload segment is caught
// by that segment's own leaf checksum, before any expansion.
func TestTCS2EverySegmentCovered(t *testing.T) {
	shape := core.Shape{Op: core.OpMatMul, N: 4, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodeTCS2(bt)
	if err != nil {
		t.Fatal(err)
	}
	env, err := parseTCS2Envelope(good)
	if err != nil {
		t.Fatal(err)
	}
	off := env.payloadOff
	for i, s := range env.segs {
		if s.size == 0 {
			continue
		}
		bad := append([]byte(nil), good...)
		bad[off+s.size/2] ^= 0x01
		_, derr := DecodeTCS2(shape, bad)
		if derr == nil {
			t.Fatalf("segment %d (kind %d): single-bit damage accepted", i, s.kind)
		}
		if !strings.Contains(derr.Error(), "checksum mismatch") {
			t.Errorf("segment %d (kind %d): damage caught by %q, want the segment leaf", i, s.kind, derr)
		}
		off += s.size
	}
	// Tampering with a leaf itself is caught by the root.
	bad := append([]byte(nil), good...)
	bad[env.payloadOff+payloadLenOf(env)] ^= 0x01
	if _, derr := DecodeTCS2(shape, bad); derr == nil || !strings.Contains(derr.Error(), "root digest") {
		t.Errorf("leaf tampering caught by %v, want the root digest", derr)
	}
}

func payloadLenOf(env *tcs2Envelope) int64 {
	var n int64
	for _, s := range env.segs {
		n += s.size
	}
	return n
}

func TestTCS2Truncation(t *testing.T) {
	shape := core.Shape{Op: core.OpCount, N: 4, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodeTCS2(bt)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(good) > 4096 {
		step = 31
	}
	for cut := 0; cut < len(good); cut += step {
		if _, err := DecodeTCS2(shape, good[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v", cut, err)
		}
	}
	if _, err := DecodeTCS2(shape, append(append([]byte(nil), good...), 0xCC)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: %v", err)
	}
}

// A resealed envelope whose only change is the version field must be
// rejected with ErrVersion (intact file, wrong generation), not as
// damage.
func TestTCS2WrongVersionRejected(t *testing.T) {
	shape := core.Shape{Op: core.OpMatMul, N: 4, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodeTCS2(bt)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[4] = FormatVersionTCS2 + 1
	resealed, ok := resealTCS2(bad)
	if !ok {
		t.Fatal("reseal failed on a well-formed envelope")
	}
	_, err = DecodeTCS2(shape, resealed)
	if !errors.Is(err, ErrVersion) {
		t.Errorf("version mismatch: %v, want ErrVersion", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("ErrVersion must wrap ErrCorrupt, got %v", err)
	}
}

// A TCS1-era cache directory heals forward: the TCS2 cache finds the
// legacy artifact, serves it, republishes it as TCS2, and takes the
// mapped path from then on.
func TestCacheMigratesTCS1(t *testing.T) {
	dir := t.TempDir()
	legacy, err := OpenWith(dir, Options{Format: FormatVersion})
	if err != nil {
		t.Fatal(err)
	}
	shape := core.Shape{Op: core.OpTrace, N: 4, Tau: 6, Alg: "strassen"}
	bt, _, err := legacy.LoadOrBuild(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(legacy.Path(shape)); err != nil {
		t.Fatalf("legacy artifact missing: %v", err)
	}

	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	rt, err := cache.Load(shape)
	if err != nil {
		t.Fatalf("migration load: %v", err)
	}
	if !bytes.Equal(tcs1Bytes(t, bt), tcs1Bytes(t, rt)) {
		t.Fatal("migrated circuit differs from the original")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Migrated != 1 || st.Saves != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 migration / 1 save", st)
	}
	if _, err := os.Stat(cache.Path(shape)); err != nil {
		t.Fatalf("migration did not publish a TCS2 artifact: %v", err)
	}
	if _, err := os.Stat(legacy.Path(shape)); err != nil {
		t.Errorf("migration removed the legacy artifact: %v", err)
	}

	// Second load takes the native TCS2 path (mapped where supported).
	if _, err := cache.Load(shape); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Migrated != 1 {
		t.Errorf("second load migrated again: %+v", st)
	}
	if mmapSupported && st.Mapped == 0 {
		t.Errorf("TCS2 load did not map: %+v", st)
	}
}

// Satellite regression pin: Encode presizes its buffer exactly — one
// allocation, no growth copies — so saving never costs more memory
// traffic than the artifact itself. cap == len catches any reintroduced
// staging buffer or estimate drift.
func TestEncodePresized(t *testing.T) {
	shape := core.Shape{Op: core.OpMatMul, N: 8, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(bt)
	if err != nil {
		t.Fatal(err)
	}
	if cap(data) != len(data) {
		t.Errorf("Encode reallocated: len %d cap %d", len(data), cap(data))
	}
}

func TestStat(t *testing.T) {
	dir := t.TempDir()
	shape := core.Shape{Op: core.OpMatMul, N: 4, Alg: "strassen"}
	bt, err := core.BuildShape(shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := bt.Circuit()

	for _, tc := range []struct {
		name   string
		format int
	}{
		{"tcs1", FormatVersion},
		{"tcs2", FormatVersionTCS2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cache, err := OpenWith(dir, Options{Format: tc.format})
			if err != nil {
				t.Fatal(err)
			}
			path, err := cache.Save(bt)
			if err != nil {
				t.Fatal(err)
			}
			info, err := Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if info.Format != tc.format {
				t.Errorf("Format = %d, want %d", info.Format, tc.format)
			}
			if info.ShapeKey != shape.Key() {
				t.Errorf("ShapeKey = %q, want %q", info.ShapeKey, shape.Key())
			}
			if info.Gates != int64(c.Size()) || info.Inputs != int64(c.NumInputs()) {
				t.Errorf("gates/inputs = %d/%d, want %d/%d", info.Gates, info.Inputs, c.Size(), c.NumInputs())
			}
			if info.StoredEdges < 0 {
				t.Error("StoredEdges not reported")
			}
			if tc.format == FormatVersionTCS2 {
				if info.Outputs != int64(len(c.Outputs())) || info.Depth != int64(c.Depth()) {
					t.Errorf("outputs/depth = %d/%d, want %d/%d", info.Outputs, info.Depth, len(c.Outputs()), c.Depth())
				}
				if len(info.RootDigest) != 64 || info.Segments < 1 {
					t.Errorf("missing integrity summary: %+v", info)
				}
			}
		})
	}
	if _, err := Stat(filepath.Join(dir, "nope.tcs")); err == nil {
		t.Error("Stat of a missing file succeeded")
	}
}
