package store

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/verify"
)

// A reloaded circuit must pass the full certification suite — the
// theorem-bound checks plus the differential oracle — exactly like a
// fresh build: deserialization must not lose or distort anything the
// verifier measures (levelization, fan-in, magnitudes, depth/size
// bounds, decode maps).
func TestReloadedCircuitCertifies(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range testShapes() {
		t.Run(shape.Key(), func(t *testing.T) {
			bt, err := core.BuildShape(shape, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cache.Save(bt); err != nil {
				t.Fatal(err)
			}
			rt, err := cache.Load(shape)
			if err != nil {
				t.Fatal(err)
			}
			cert, err := verify.CertifyBuilt(rt)
			if err != nil {
				t.Fatal(err)
			}
			if !cert.OK {
				t.Fatalf("reloaded circuit fails certification: %v", cert.Err())
			}

			rng := rand.New(rand.NewSource(13))
			switch {
			case rt.MatMul != nil:
				err = verify.DifferentialMatMul(rt.MatMul, rng, 4)
			case rt.Trace != nil:
				err = verify.DifferentialTrace(rt.Trace, rng, 4)
			case rt.Count != nil:
				err = verify.DifferentialCount(rt.Count, rng, 4)
			}
			if err != nil {
				t.Fatalf("differential oracle on reloaded circuit: %v", err)
			}
		})
	}
}
