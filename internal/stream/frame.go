package stream

import (
	"encoding/binary"
	"fmt"
)

// Binary frame codec for POST /v1/graph, following the TCF1 codec's
// conventions (strict magic/flag/trailing-byte rejection, varint
// fields, hostile-header allocation caps).
//
// Request frame ("TCG1"):
//
//	magic[4] op[1] flags[1]
//	uvarint len(tenant), tenant bytes
//	op=create: uvarint n, varint tau
//	op=update: uvarint nops, then per op kind[1] uvarint u uvarint v
//	op=screen, op=close: no payload
//
// flags: bit0 = screen after applying (create/update; implied for the
// screen op), bit1 = energy accounting. kind: 0 insert, 1 delete.
//
// Response frame ("TCGR"):
//
//	magic[4] flags[1]
//	uvarint version, uvarint edges, varint count, varint energy
//
// flags: bit0 = screened (count/decision meaningful), bit1 = decision
// (≥ τ), bit2 = energy meaningful.
//
// Both sides reject unknown op/flag bits, truncated payloads and
// trailing bytes.

// GraphOp selects the session operation a request frame carries.
type GraphOp byte

const (
	OpCreate GraphOp = 1
	OpUpdate GraphOp = 2
	OpScreen GraphOp = 3
	OpClose  GraphOp = 4
)

func (op GraphOp) String() string {
	switch op {
	case OpCreate:
		return "create"
	case OpUpdate:
		return "update"
	case OpScreen:
		return "screen"
	case OpClose:
		return "close"
	}
	return fmt.Sprintf("op(%d)", byte(op))
}

var (
	graphMagic     = [4]byte{'T', 'C', 'G', '1'}
	graphRespMagic = [4]byte{'T', 'C', 'G', 'R'}
)

// maxFrameOps bounds the declared edge-op count so a hostile header
// cannot force a huge allocation (1M ops is far beyond any sane batch
// for n ≤ 64 vertices).
const maxFrameOps = 1 << 20

// maxFrameVertex bounds encoded vertex ids and n; real validation
// against the session's n happens in the manager.
const maxFrameVertex = 1 << 20

// GraphRequest is the decoded form of one /v1/graph request frame.
type GraphRequest struct {
	Op     GraphOp
	Tenant string
	N      int   // create only
	Tau    int64 // create only
	Ops    []EdgeOp
	Screen bool
	Energy bool
}

// GraphResponse is the decoded form of one /v1/graph response frame.
type GraphResponse struct {
	Screened  bool
	Decision  bool
	HasEnergy bool
	Version   uint64
	Edges     int64
	Count     int64
	Energy    int64
}

// EncodeGraphRequest serializes one request frame.
func EncodeGraphRequest(req GraphRequest) ([]byte, error) {
	switch req.Op {
	case OpCreate, OpUpdate, OpScreen, OpClose:
	default:
		return nil, fmt.Errorf("stream: frame: unknown op %d", req.Op)
	}
	if err := checkTenant(req.Tenant); err != nil {
		return nil, err
	}
	var flags byte
	if req.Screen {
		flags |= 1
	}
	if req.Energy {
		flags |= 2
	}
	b := make([]byte, 0, 16+len(req.Tenant)+4*len(req.Ops))
	b = append(b, graphMagic[:]...)
	b = append(b, byte(req.Op), flags)
	b = binary.AppendUvarint(b, uint64(len(req.Tenant)))
	b = append(b, req.Tenant...)
	switch req.Op {
	case OpCreate:
		if req.N < 0 || req.N > maxFrameVertex {
			return nil, fmt.Errorf("stream: frame: n %d out of range", req.N)
		}
		b = binary.AppendUvarint(b, uint64(req.N))
		b = binary.AppendVarint(b, req.Tau)
	case OpUpdate:
		if len(req.Ops) > maxFrameOps {
			return nil, fmt.Errorf("stream: frame: %d ops exceeds cap %d", len(req.Ops), maxFrameOps)
		}
		b = binary.AppendUvarint(b, uint64(len(req.Ops)))
		for _, op := range req.Ops {
			if op.U < 0 || op.U > maxFrameVertex || op.V < 0 || op.V > maxFrameVertex {
				return nil, fmt.Errorf("stream: frame: vertex in {%d,%d} out of range", op.U, op.V)
			}
			kind := byte(0)
			if op.Delete {
				kind = 1
			}
			b = append(b, kind)
			b = binary.AppendUvarint(b, uint64(op.U))
			b = binary.AppendUvarint(b, uint64(op.V))
		}
	}
	return b, nil
}

// DecodeGraphRequest parses one request frame, rejecting malformed,
// truncated or trailing-padded input.
func DecodeGraphRequest(b []byte) (GraphRequest, error) {
	var req GraphRequest
	if len(b) < len(graphMagic)+2 {
		return req, fmt.Errorf("stream: frame: %d bytes is shorter than the header", len(b))
	}
	if [4]byte(b[:4]) != graphMagic {
		return req, fmt.Errorf("stream: frame: bad magic %q", b[:4])
	}
	opCode, flags := b[4], b[5]
	b = b[6:]
	switch GraphOp(opCode) {
	case OpCreate, OpUpdate, OpScreen, OpClose:
		req.Op = GraphOp(opCode)
	default:
		return req, fmt.Errorf("stream: frame: unknown op code %d", opCode)
	}
	if flags > 3 {
		return req, fmt.Errorf("stream: frame: unknown flag bits %#x", flags)
	}
	req.Screen = flags&1 != 0
	req.Energy = flags&2 != 0
	tn, k := binary.Uvarint(b)
	if k <= 0 || tn > maxTenantLen {
		return req, fmt.Errorf("stream: frame: bad tenant length")
	}
	b = b[k:]
	if len(b) < int(tn) {
		return req, fmt.Errorf("stream: frame: truncated tenant")
	}
	req.Tenant = string(b[:tn])
	b = b[tn:]
	if err := checkTenant(req.Tenant); err != nil {
		return req, err
	}
	switch req.Op {
	case OpCreate:
		n, k := binary.Uvarint(b)
		if k <= 0 || n > maxFrameVertex {
			return req, fmt.Errorf("stream: frame: bad n varint")
		}
		b = b[k:]
		req.N = int(n)
		tau, k := binary.Varint(b)
		if k <= 0 {
			return req, fmt.Errorf("stream: frame: bad tau varint")
		}
		b = b[k:]
		req.Tau = tau
	case OpUpdate:
		nops, k := binary.Uvarint(b)
		if k <= 0 || nops > maxFrameOps {
			return req, fmt.Errorf("stream: frame: bad op count")
		}
		b = b[k:]
		req.Ops = make([]EdgeOp, nops)
		for i := range req.Ops {
			if len(b) < 1 {
				return req, fmt.Errorf("stream: frame: truncated op %d", i)
			}
			kind := b[0]
			if kind > 1 {
				return req, fmt.Errorf("stream: frame: unknown op kind %d", kind)
			}
			b = b[1:]
			u, k := binary.Uvarint(b)
			if k <= 0 || u > maxFrameVertex {
				return req, fmt.Errorf("stream: frame: bad vertex in op %d", i)
			}
			b = b[k:]
			v, k := binary.Uvarint(b)
			if k <= 0 || v > maxFrameVertex {
				return req, fmt.Errorf("stream: frame: bad vertex in op %d", i)
			}
			b = b[k:]
			req.Ops[i] = EdgeOp{U: int(u), V: int(v), Delete: kind == 1}
		}
	}
	if len(b) != 0 {
		return req, fmt.Errorf("stream: frame: %d trailing bytes", len(b))
	}
	return req, nil
}

// EncodeGraphResponse serializes one response frame.
func EncodeGraphResponse(resp GraphResponse) []byte {
	var flags byte
	if resp.Screened {
		flags |= 1
	}
	if resp.Decision {
		flags |= 2
	}
	if resp.HasEnergy {
		flags |= 4
	}
	b := make([]byte, 0, 32)
	b = append(b, graphRespMagic[:]...)
	b = append(b, flags)
	b = binary.AppendUvarint(b, resp.Version)
	b = binary.AppendUvarint(b, uint64(resp.Edges))
	b = binary.AppendVarint(b, resp.Count)
	b = binary.AppendVarint(b, resp.Energy)
	return b
}

// DecodeGraphResponse parses a response frame.
func DecodeGraphResponse(b []byte) (GraphResponse, error) {
	var resp GraphResponse
	if len(b) < len(graphRespMagic)+1 {
		return resp, fmt.Errorf("stream: frame: response shorter than header")
	}
	if [4]byte(b[:4]) != graphRespMagic {
		return resp, fmt.Errorf("stream: frame: bad response magic %q", b[:4])
	}
	flags := b[4]
	if flags > 7 {
		return resp, fmt.Errorf("stream: frame: unknown response flag bits %#x", flags)
	}
	resp.Screened = flags&1 != 0
	resp.Decision = flags&2 != 0
	resp.HasEnergy = flags&4 != 0
	b = b[5:]
	ver, k := binary.Uvarint(b)
	if k <= 0 {
		return resp, fmt.Errorf("stream: frame: bad version varint")
	}
	b = b[k:]
	resp.Version = ver
	edges, k := binary.Uvarint(b)
	if k <= 0 || edges > 1<<62 {
		return resp, fmt.Errorf("stream: frame: bad edge count varint")
	}
	b = b[k:]
	resp.Edges = int64(edges)
	count, k := binary.Varint(b)
	if k <= 0 {
		return resp, fmt.Errorf("stream: frame: bad count varint")
	}
	b = b[k:]
	resp.Count = count
	energy, k := binary.Varint(b)
	if k <= 0 {
		return resp, fmt.Errorf("stream: frame: bad energy varint")
	}
	b = b[k:]
	resp.Energy = energy
	if len(b) != 0 {
		return resp, fmt.Errorf("stream: frame: %d trailing response bytes", len(b))
	}
	return resp, nil
}
