package stream

import (
	"bytes"
	"reflect"
	"testing"
)

func TestGraphRequestRoundTrip(t *testing.T) {
	cases := []GraphRequest{
		{Op: OpCreate, Tenant: "acme", N: 8, Tau: 3},
		{Op: OpCreate, Tenant: "t", N: 64, Tau: -7, Screen: true, Energy: true},
		{Op: OpUpdate, Tenant: "acme", Ops: []EdgeOp{{U: 0, V: 1}, {U: 5, V: 2, Delete: true}}, Screen: true},
		{Op: OpUpdate, Tenant: "acme", Ops: []EdgeOp{}, Energy: true},
		{Op: OpScreen, Tenant: "acme", Screen: true, Energy: true},
		{Op: OpClose, Tenant: "bye"},
	}
	for i, req := range cases {
		b, err := EncodeGraphRequest(req)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := DecodeGraphRequest(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		// Encoding an empty op list decodes as an empty (non-nil) list.
		if req.Ops == nil && got.Ops != nil && len(got.Ops) == 0 {
			got.Ops = nil
		}
		if req.Ops != nil && len(req.Ops) == 0 && len(got.Ops) == 0 {
			got.Ops = req.Ops
		}
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, req, got)
		}
	}
}

func TestGraphResponseRoundTrip(t *testing.T) {
	cases := []GraphResponse{
		{},
		{Screened: true, Decision: true, HasEnergy: true, Version: 12, Edges: 9, Count: 4, Energy: 1234},
		{Screened: true, Count: -1, Energy: -5, Version: 1 << 40},
	}
	for i, resp := range cases {
		got, err := DecodeGraphResponse(EncodeGraphResponse(resp))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != resp {
			t.Fatalf("case %d: round trip %+v -> %+v", i, resp, got)
		}
	}
}

// Strictness: malformed, truncated and trailing-padded frames must all
// reject.
func TestGraphFrameRejects(t *testing.T) {
	valid, err := EncodeGraphRequest(GraphRequest{
		Op: OpUpdate, Tenant: "acme",
		Ops: []EdgeOp{{U: 1, V: 2}}, Screen: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeGraphRequest(valid); err != nil {
		t.Fatal(err)
	}
	reject := func(name string, b []byte) {
		t.Helper()
		if _, err := DecodeGraphRequest(b); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	reject("empty", nil)
	reject("bad magic", append([]byte("TCF1"), valid[4:]...))
	reject("trailing byte", append(bytes.Clone(valid), 0))
	for cut := 1; cut < len(valid); cut++ {
		reject("truncation", valid[:cut])
	}
	bad := bytes.Clone(valid)
	bad[4] = 9 // unknown op
	reject("unknown op", bad)
	bad = bytes.Clone(valid)
	bad[5] = 0x80 // unknown flag
	reject("unknown flags", bad)
	// Unknown edge-op kind: kind byte follows magic+op+flags+len+tenant+nops.
	bad = bytes.Clone(valid)
	bad[len(graphMagic)+2+1+len("acme")+1] = 2
	reject("unknown kind", bad)
	// Oversized declared tenant length must not allocate or accept.
	huge := append([]byte("TCG1"), 2, 0)
	huge = append(huge, 0xFF, 0xFF, 0x7F) // uvarint ~2M
	reject("huge tenant", huge)

	vresp := EncodeGraphResponse(GraphResponse{Screened: true, Count: 7})
	if _, err := DecodeGraphResponse(vresp); err != nil {
		t.Fatal(err)
	}
	rejectResp := func(name string, b []byte) {
		t.Helper()
		if _, err := DecodeGraphResponse(b); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	rejectResp("empty", nil)
	rejectResp("bad magic", append([]byte("TCR1"), vresp[4:]...))
	rejectResp("trailing", append(bytes.Clone(vresp), 0))
	for cut := 1; cut < len(vresp); cut++ {
		rejectResp("truncation", vresp[:cut])
	}
	bad = bytes.Clone(vresp)
	bad[4] = 0x10
	rejectResp("unknown flags", bad)
}
