package stream

import (
	"reflect"
	"testing"
)

// FuzzGraphFrame drives both TCG1 decoders with arbitrary bytes: they
// must never panic, and anything they accept must re-encode to a frame
// that decodes back to the same value (the input bytes themselves may
// differ — fuzzed varints need not be minimal).
func FuzzGraphFrame(f *testing.F) {
	seed := []GraphRequest{
		{Op: OpCreate, Tenant: "acme", N: 8, Tau: 3, Screen: true, Energy: true},
		{Op: OpUpdate, Tenant: "t", Ops: []EdgeOp{{U: 0, V: 1}, {U: 3, V: 2, Delete: true}}},
		{Op: OpScreen, Tenant: "s", Energy: true},
		{Op: OpClose, Tenant: "bye"},
	}
	for _, req := range seed {
		b, err := EncodeGraphRequest(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add(EncodeGraphResponse(GraphResponse{Screened: true, Decision: true, HasEnergy: true, Version: 5, Edges: 3, Count: 2, Energy: 99}))
	f.Fuzz(func(t *testing.T, b []byte) {
		if req, err := DecodeGraphRequest(b); err == nil {
			enc, err := EncodeGraphRequest(req)
			if err != nil {
				t.Fatalf("decoded request does not re-encode: %+v: %v", req, err)
			}
			got, err := DecodeGraphRequest(enc)
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %+v: %v", req, err)
			}
			if len(req.Ops) == 0 && len(got.Ops) == 0 {
				got.Ops = req.Ops
			}
			if !reflect.DeepEqual(req, got) {
				t.Fatalf("request round trip drifted: %+v -> %+v", req, got)
			}
		}
		if resp, err := DecodeGraphResponse(b); err == nil {
			got, err := DecodeGraphResponse(EncodeGraphResponse(resp))
			if err != nil || got != resp {
				t.Fatalf("response round trip drifted: %+v -> %+v (%v)", resp, got, err)
			}
		}
	})
}
