package stream

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/serve"
)

// Mux composes the serving stack's HTTP surface with the streaming
// layer: every serve.Server route plus
//
//	POST /v1/graph  binary TCG1 frame (see frame.go) -> TCGR frame
//	GET  /v1/stats  serve Snapshot with a nested "graph" section
//
// The /v1/stats override embeds the server snapshot, so existing
// consumers keep their fields and gain the per-tenant graph counters.
func Mux(s *serve.Server, m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.HandleFunc("/v1/graph", m.handleGraph)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			serve.Snapshot
			Graph Stats `json:"graph"`
		}{s.Snapshot(), m.Stats()})
	})
	return mux
}

// Handler returns just the /v1/graph endpoint (for callers composing
// their own mux).
func (m *Manager) Handler() http.Handler {
	return http.HandlerFunc(m.handleGraph)
}

func (m *Manager) handleGraph(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	req, err := DecodeGraphRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), m.cfg.RequestTimeout)
	defer cancel()

	var res Result
	switch req.Op {
	case OpCreate:
		res, err = m.Create(ctx, req.Tenant, req.N, req.Tau)
		if err == nil && req.Screen {
			res, err = m.Screen(ctx, req.Tenant, req.Energy)
		}
	case OpUpdate:
		res, err = m.Update(ctx, req.Tenant, req.Ops, req.Screen, req.Energy)
	case OpScreen:
		res, err = m.Screen(ctx, req.Tenant, req.Energy)
	case OpClose:
		err = m.CloseTenant(req.Tenant)
	}
	if err != nil {
		m.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", serve.FrameContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(EncodeGraphResponse(GraphResponse{
		Screened:  res.Screened,
		Decision:  res.Decision,
		HasEnergy: res.Screened && req.Energy,
		Version:   res.Version,
		Edges:     res.Edges,
		Count:     res.Count,
		Energy:    res.Energy,
	}))
}

// writeError maps streaming errors onto the serving layer's HTTP
// conventions, adding the session-lifecycle statuses: no session 404,
// duplicate create 409, retired mid-call 410.
func (m *Manager) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoSession):
		status = http.StatusNotFound
	case errors.Is(err, ErrExists):
		status = http.StatusConflict
	case errors.Is(err, ErrRetired):
		status = http.StatusGone
	case errors.Is(err, serve.ErrBusy):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed), errors.Is(err, serve.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
