package stream

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/graph"
	"repro/internal/serve"
)

func postGraph(t *testing.T, client *http.Client, url string, req GraphRequest) (*http.Response, []byte) {
	t.Helper()
	frame, err := EncodeGraphRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/v1/graph", serve.FrameContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// End-to-end over HTTP: create, update+screen with energy, plain
// screen, stats merge, close — every screened count checked against a
// shadow oracle, every error path checked against its status code.
func TestGraphHTTP(t *testing.T) {
	srv := serve.New(serve.Config{})
	defer srv.Close()
	m := NewManager(Config{Server: srv})
	defer m.Close()
	ts := httptest.NewServer(Mux(srv, m))
	defer ts.Close()
	client := ts.Client()

	const n, tau = 8, 2
	resp, _ := postGraph(t, client, ts.URL, GraphRequest{Op: OpCreate, Tenant: "acme", N: n, Tau: tau})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	// Duplicate create: 409.
	resp, _ = postGraph(t, client, ts.URL, GraphRequest{Op: OpCreate, Tenant: "acme", N: n, Tau: tau})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d", resp.StatusCode)
	}

	shadow := graph.NewBitset(n)
	ops := []EdgeOp{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5}}
	apply(t, shadow, ops)
	resp, body := postGraph(t, client, ts.URL, GraphRequest{Op: OpUpdate, Tenant: "acme", Ops: ops, Screen: true, Energy: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != serve.FrameContentType {
		t.Fatalf("content type %q", ct)
	}
	gr, err := DecodeGraphResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if !gr.Screened || !gr.HasEnergy || gr.Count != shadow.Triangles() || gr.Count != 2 {
		t.Fatalf("update response %+v, oracle count %d", gr, shadow.Triangles())
	}
	if !gr.Decision || gr.Energy <= 0 || gr.Version != 1 || gr.Edges != shadow.Edges() {
		t.Fatalf("update response %+v", gr)
	}

	// Delete one triangle edge and re-screen without energy.
	del := []EdgeOp{{U: 0, V: 2, Delete: true}}
	apply(t, shadow, del)
	resp, body = postGraph(t, client, ts.URL, GraphRequest{Op: OpUpdate, Tenant: "acme", Ops: del, Screen: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	gr, err = DecodeGraphResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Count != 1 || gr.Decision || gr.HasEnergy || gr.Energy != 0 {
		t.Fatalf("after delete: %+v", gr)
	}

	// Standalone screen op.
	resp, body = postGraph(t, client, ts.URL, GraphRequest{Op: OpScreen, Tenant: "acme", Energy: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("screen: %d", resp.StatusCode)
	}
	if gr, err = DecodeGraphResponse(body); err != nil || gr.Count != shadow.Triangles() {
		t.Fatalf("screen: %+v (%v)", gr, err)
	}

	// Merged /v1/stats: serve fields and the nested graph section.
	sresp, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Requests int64 `json:"requests"`
		Energy   int64 `json:"energy_gates"`
		Graph    struct {
			Sessions int64 `json:"sessions"`
			Screens  int64 `json:"screens"`
			Tenants  []struct {
				Tenant string `json:"tenant"`
				Energy int64  `json:"energy"`
			} `json:"tenants"`
		} `json:"graph"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Graph.Sessions != 1 || stats.Graph.Screens != 3 || len(stats.Graph.Tenants) != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Graph.Tenants[0].Energy == 0 || stats.Energy == 0 || stats.Requests == 0 {
		t.Fatalf("stats missing energy/serve sections: %+v", stats)
	}

	// Ops on a missing tenant: 404. Close: 200, then 404.
	resp, _ = postGraph(t, client, ts.URL, GraphRequest{Op: OpScreen, Tenant: "ghost"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost screen: %d", resp.StatusCode)
	}
	resp, _ = postGraph(t, client, ts.URL, GraphRequest{Op: OpClose, Tenant: "acme"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: %d", resp.StatusCode)
	}
	resp, _ = postGraph(t, client, ts.URL, GraphRequest{Op: OpClose, Tenant: "acme"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double close: %d", resp.StatusCode)
	}

	// Malformed frame: 400. Bad method: 405. Serve routes still mounted.
	r, err := client.Post(ts.URL+"/v1/graph", serve.FrameContentType, bytes.NewReader([]byte("nonsense")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed frame: %d", r.StatusCode)
	}
	r, err = client.Get(ts.URL + "/v1/graph")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/graph: %d", r.StatusCode)
	}
	r, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz through Mux: %d", r.StatusCode)
	}
}
