package stream

// TenantStats is one session's aggregate view in /v1/stats.
type TenantStats struct {
	Tenant  string `json:"tenant"`
	N       int    `json:"n"`
	Tau     int64  `json:"tau"`
	Version uint64 `json:"version"`
	Edges   int64  `json:"edges"`
	Updates int64  `json:"updates"`
	EdgeOps int64  `json:"edge_ops"`
	Screens int64  `json:"screens"`
	// Energy is the session's aggregate Uchizawa energy: the total
	// firing-gate count across every energy-accounted screen.
	Energy       int64 `json:"energy"`
	Dirty        bool  `json:"dirty"`
	LastCount    int64 `json:"last_count"`
	LastDecision bool  `json:"last_decision"`
	HasScreened  bool  `json:"has_screened"`
}

// Stats is the manager's counter snapshot, nested under "graph" in the
// merged /v1/stats payload.
type Stats struct {
	Sessions    int   `json:"sessions"`
	Creates     int64 `json:"creates"`
	Updates     int64 `json:"updates"`
	EdgeOps     int64 `json:"edge_ops"`
	Screens     int64 `json:"screens"`
	Retirements int64 `json:"retirements"`
	EnergyGates int64 `json:"energy_gates"`

	Tenants []TenantStats `json:"tenants,omitempty"`
}

// Stats returns a point-in-time snapshot: global counters plus one row
// per live session, in LRU order (most recently used first). Each
// session row is internally consistent (taken under the session lock);
// cross-session skew is acceptable for metrics.
func (m *Manager) Stats() Stats {
	st := Stats{
		Creates:     m.creates.Load(),
		Updates:     m.updates.Load(),
		EdgeOps:     m.edgeOps.Load(),
		Screens:     m.screens.Load(),
		Retirements: m.retirements.Load(),
		EnergyGates: m.energyGates.Load(),
	}
	m.mu.Lock()
	st.Sessions = m.lru.Len()
	sessions := make([]*session, 0, m.lru.Len())
	for el := m.lru.Front(); el != nil; el = el.Next() {
		sessions = append(sessions, el.Value.(*session))
	}
	m.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		row := TenantStats{
			Tenant: s.tenant, N: s.n, Tau: s.tau,
			Version: s.version, Edges: s.adj.Edges(),
			Updates: s.updates, EdgeOps: s.edgeOps,
			Screens: s.screens, Energy: s.energy, Dirty: s.dirty,
			LastCount: s.lastCnt, LastDecision: s.lastDec, HasScreened: s.lastOK,
		}
		retired := s.retired
		s.mu.Unlock()
		if !retired {
			st.Tenants = append(st.Tenants, row)
		}
	}
	return st
}
