// Package stream is the stateful streaming layer over the serving
// stack: per-tenant graph sessions behind tcserve. Each session holds
// one client graph as an adjacency bitset, accepts batched edge
// insert/delete updates over the binary /v1/graph frame op, and
// re-screens the paper's headline decision — "does G have ≥ τ
// triangles?" — through the existing count circuits.
//
// Two screening paths share the same circuit:
//
//   - the request path hands each session's assignment to the sharded
//     dispatcher (serve.Server.Do/DoEnergy), where concurrent tenants'
//     screens coalesce into bit-sliced batches — up to 64 tenant
//     graphs per machine word;
//   - ScreenDirty is the direct maintenance sweep: it freezes up to 64
//     dirty sessions per chunk and pays one TrianglesEnergyBatch pass
//     for all of them.
//
// Both are bit-identical to the scalar recount oracle
// (graph.Bitset.Triangles), and both can tally Uchizawa energy — the
// number of gates that fired screening this request — per response and
// aggregated per tenant in /v1/stats.
//
// Sessions live in a bounded LRU. Eviction is lossless in the
// explicit-failure sense that mirrors the circuit dispatcher's
// done/dead protocol: retirement takes the session lock, so an
// in-flight update or screen always completes against live state, and
// every later call observes retired and fails with ErrRetired (HTTP
// 410) rather than mutating a zombie — no update is silently dropped,
// no screen reports a detached graph.
package stream

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/serve"
)

var (
	// ErrNoSession reports an operation on a tenant with no live
	// session (never created, closed, or evicted) — HTTP 404.
	ErrNoSession = errors.New("stream: no such session")
	// ErrExists reports Create on a tenant that already has a live
	// session — HTTP 409.
	ErrExists = errors.New("stream: session already exists")
	// ErrRetired reports that the session was evicted or closed while
	// the call was in flight; the tenant must re-create and replay —
	// HTTP 410.
	ErrRetired = errors.New("stream: session retired")
	// ErrClosed reports that the manager has shut down — HTTP 503.
	ErrClosed = errors.New("stream: manager closed")
)

// maxTenantLen bounds tenant identifiers (they travel in every frame).
const maxTenantLen = 128

// Config tunes a Manager. Server is required; everything else
// defaults.
type Config struct {
	// Server evaluates the screens: sessions share its circuit LRU and
	// sharded dispatch.
	Server *serve.Server
	// MaxSessions bounds the session LRU (default 1024). Creating past
	// the bound retires the least-recently-used session.
	MaxSessions int
	// MaxN bounds per-session graph size (default 64): sessions are
	// cheap, circuits are not, and every distinct N is one circuit.
	MaxN int
	// Alg selects the bilinear algorithm for the count circuits
	// (default "strassen").
	Alg string
	// RequestTimeout caps each HTTP graph request (default 30s).
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxN <= 0 {
		c.MaxN = 64
	}
	if c.Alg == "" {
		c.Alg = "strassen"
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// EdgeOp is one edge mutation in an update batch.
type EdgeOp struct {
	U, V   int
	Delete bool
}

// Result is the outcome of a session operation. Count, Decision and
// Energy are meaningful only when Screened is true (and Energy only
// when the request asked for energy accounting).
type Result struct {
	Tenant   string
	Version  uint64 // update batches accepted so far
	Edges    int64
	Screened bool
	Count    int64 // triangles at this version
	Decision bool  // Count >= τ
	Energy   int64 // gates fired by this screen
}

// session is one tenant's graph state. All fields behind mu; the
// manager never holds its own lock while taking a session lock.
type session struct {
	tenant string
	n      int
	tau    int64
	shape  core.Shape // count shape; τ-independent, so tenants share circuits

	mu      sync.Mutex
	retired bool
	adj     *graph.Bitset
	version uint64
	dirty   bool // edges changed since the last screen
	screens int64
	energy  int64 // aggregate gates across this session's screens
	lastOK  bool  // a screen has completed
	lastCnt int64
	lastDec bool
	updates int64
	edgeOps int64
}

// Manager owns the session table. Safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	lru      *list.List // of *session, front = most recently used
	byTenant map[string]*list.Element
	closed   bool

	// screenMu serializes ScreenDirty sweeps: the CountCircuit's cached
	// batch evaluator is not safe for concurrent use (the request path
	// is unaffected — it runs on the dispatcher's private evaluators).
	screenMu sync.Mutex

	creates     atomic.Int64
	updates     atomic.Int64
	edgeOps     atomic.Int64
	screens     atomic.Int64
	retirements atomic.Int64
	energyGates atomic.Int64
}

// NewManager returns a ready Manager over the given server.
func NewManager(cfg Config) *Manager {
	if cfg.Server == nil {
		panic("stream: Config.Server is required")
	}
	return &Manager{
		cfg:      cfg.withDefaults(),
		lru:      list.New(),
		byTenant: make(map[string]*list.Element),
	}
}

// Create opens a session for tenant: an empty graph on n vertices
// screened against τ. The count circuit is resolved eagerly (building
// or warm-starting through the server's cache), so a bad n fails here
// rather than on first screen. Creating past MaxSessions retires the
// least-recently-used session.
func (m *Manager) Create(ctx context.Context, tenant string, n int, tau int64) (Result, error) {
	if err := checkTenant(tenant); err != nil {
		return Result{}, err
	}
	if n < 1 || n > m.cfg.MaxN {
		return Result{}, fmt.Errorf("stream: n=%d out of range [1, %d]", n, m.cfg.MaxN)
	}
	shape := core.Shape{Op: core.OpCount, N: n, Alg: m.cfg.Alg}
	if _, err := m.cfg.Server.Built(ctx, shape); err != nil {
		return Result{}, fmt.Errorf("stream: no count circuit for n=%d: %w", n, err)
	}
	s := &session{tenant: tenant, n: n, tau: tau, shape: shape, adj: graph.NewBitset(n)}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Result{}, ErrClosed
	}
	if _, ok := m.byTenant[tenant]; ok {
		m.mu.Unlock()
		return Result{}, fmt.Errorf("stream: tenant %q: %w", tenant, ErrExists)
	}
	m.byTenant[tenant] = m.lru.PushFront(s)
	var evicted *session
	if m.lru.Len() > m.cfg.MaxSessions {
		back := m.lru.Back()
		evicted = back.Value.(*session)
		m.lru.Remove(back)
		delete(m.byTenant, evicted.tenant)
	}
	m.mu.Unlock()
	if evicted != nil {
		m.retire(evicted)
	}
	m.creates.Add(1)
	return Result{Tenant: tenant}, nil
}

// retire marks a session dead. Taking the session lock is what makes
// eviction lossless: an in-flight update or screen holds it, so the
// retirement waits for that call to complete against live state, and
// every subsequent call fails with ErrRetired instead of mutating a
// detached graph.
func (m *Manager) retire(s *session) {
	s.mu.Lock()
	s.retired = true
	s.mu.Unlock()
	m.retirements.Add(1)
}

// lookup resolves tenant to its live session, refreshing LRU order.
func (m *Manager) lookup(tenant string) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	el, ok := m.byTenant[tenant]
	if !ok {
		return nil, fmt.Errorf("stream: tenant %q: %w", tenant, ErrNoSession)
	}
	m.lru.MoveToFront(el)
	return el.Value.(*session), nil
}

// Update applies one batch of edge mutations to tenant's graph and,
// when screen is set, re-screens "≥ τ triangles" through the sharded
// dispatcher in the same critical section — the screened count is
// exactly the count at the returned version. The batch is atomic:
// every op is validated against the session's vertex range before any
// is applied, so a bad op rejects the whole batch untouched.
func (m *Manager) Update(ctx context.Context, tenant string, ops []EdgeOp, screen, energy bool) (Result, error) {
	s, err := m.lookup(tenant)
	if err != nil {
		return Result{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return Result{}, fmt.Errorf("stream: tenant %q: %w", tenant, ErrRetired)
	}
	for i, op := range ops {
		if op.U < 0 || op.U >= s.n || op.V < 0 || op.V >= s.n || op.U == op.V {
			return Result{}, fmt.Errorf("stream: op %d: edge {%d,%d} invalid for n=%d", i, op.U, op.V, s.n)
		}
	}
	changed := false
	for _, op := range ops {
		ch, err := s.adj.Set(op.U, op.V, !op.Delete)
		if err != nil {
			// Unreachable after validation; fail loudly if it ever isn't.
			return Result{}, fmt.Errorf("stream: tenant %q: %v", tenant, err)
		}
		changed = changed || ch
	}
	if len(ops) > 0 {
		s.version++
		s.updates++
		m.updates.Add(1)
		m.edgeOps.Add(int64(len(ops)))
		s.edgeOps += int64(len(ops))
		if changed {
			s.dirty = true
		}
	}
	res := Result{Tenant: tenant, Version: s.version, Edges: s.adj.Edges()}
	if !screen {
		return res, nil
	}
	return m.screenLocked(ctx, s, res, energy)
}

// Screen re-screens tenant's current graph without mutating it.
func (m *Manager) Screen(ctx context.Context, tenant string, energy bool) (Result, error) {
	s, err := m.lookup(tenant)
	if err != nil {
		return Result{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return Result{}, fmt.Errorf("stream: tenant %q: %w", tenant, ErrRetired)
	}
	res := Result{Tenant: tenant, Version: s.version, Edges: s.adj.Edges()}
	return m.screenLocked(ctx, s, res, energy)
}

// screenLocked evaluates one screen through the sharded dispatcher.
// Called with s.mu held: concurrent tenants' screens coalesce into the
// dispatcher's bit-sliced batches while each session's own stream
// stays serialized.
func (m *Manager) screenLocked(ctx context.Context, s *session, res Result, energy bool) (Result, error) {
	bt, err := m.cfg.Server.Built(ctx, s.shape)
	if err != nil {
		return Result{}, err
	}
	in, err := bt.Count.Assign(s.adj.Matrix())
	if err != nil {
		return Result{}, err
	}
	var out []bool
	var gates int64
	if energy {
		out, gates, err = m.cfg.Server.DoEnergy(ctx, s.shape, in)
	} else {
		out, err = m.cfg.Server.Do(ctx, s.shape, in)
	}
	if err != nil {
		return Result{}, err
	}
	count, err := bt.Count.DecodeTriangles(out)
	if err != nil {
		return Result{}, err
	}
	s.dirty = false
	s.screens++
	s.energy += gates
	s.lastOK, s.lastCnt, s.lastDec = true, count, count >= s.tau
	m.screens.Add(1)
	m.energyGates.Add(gates)
	res.Screened, res.Count, res.Decision, res.Energy = true, count, count >= s.tau, gates
	return res, nil
}

// CloseTenant retires tenant's session and forgets it.
func (m *Manager) CloseTenant(tenant string) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	el, ok := m.byTenant[tenant]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("stream: tenant %q: %w", tenant, ErrNoSession)
	}
	m.lru.Remove(el)
	delete(m.byTenant, tenant)
	m.mu.Unlock()
	m.retire(el.Value.(*session))
	return nil
}

// ScreenDirty is the maintenance sweep: it screens every session whose
// graph changed since its last screen, packing up to 64 frozen tenant
// graphs per chunk into one TrianglesEnergyBatch plane pass. Sessions
// are grouped by shape (all same-N tenants share one circuit — τ lives
// outside the circuit), each chunk's session locks are held across its
// evaluation so the recorded count is exactly the count at the
// recorded version, and results come back in tenant order.
func (m *Manager) ScreenDirty(ctx context.Context, energy bool) ([]Result, error) {
	m.screenMu.Lock()
	defer m.screenMu.Unlock()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	sessions := make([]*session, 0, m.lru.Len())
	for el := m.lru.Front(); el != nil; el = el.Next() {
		sessions = append(sessions, el.Value.(*session))
	}
	m.mu.Unlock()

	// Stable grouping by shape, tenant order within a group. The sort
	// also fixes the multi-lock order; Update/Screen only ever hold one
	// session lock, so no cycle is possible.
	sort.Slice(sessions, func(i, j int) bool {
		if sessions[i].shape != sessions[j].shape {
			return sessions[i].shape.Key() < sessions[j].shape.Key()
		}
		return sessions[i].tenant < sessions[j].tenant
	})

	var results []Result
	for lo := 0; lo < len(sessions); {
		hi := lo + 1
		for hi < len(sessions) && sessions[hi].shape == sessions[lo].shape {
			hi++
		}
		group := sessions[lo:hi]
		lo = hi
		bt, err := m.cfg.Server.Built(ctx, group[0].shape)
		if err != nil {
			return results, err
		}
		for chunk := 0; chunk < len(group); chunk += 64 {
			end := chunk + 64
			if end > len(group) {
				end = len(group)
			}
			if err := m.screenChunk(bt, group[chunk:end], energy, &results); err != nil {
				return results, err
			}
		}
	}
	return results, nil
}

// screenChunk freezes one chunk of sessions (locks held for the whole
// evaluation), screens the dirty ones in a single batched pass, and
// records the results against the frozen versions.
func (m *Manager) screenChunk(bt *core.Built, group []*session, energy bool, results *[]Result) error {
	live := make([]*session, 0, len(group))
	for _, s := range group {
		s.mu.Lock()
		if s.retired || !s.dirty {
			s.mu.Unlock()
			continue
		}
		live = append(live, s)
	}
	defer func() {
		for _, s := range live {
			s.mu.Unlock()
		}
	}()
	if len(live) == 0 {
		return nil
	}
	adjs := make([]*matrix.Matrix, len(live))
	for i, s := range live {
		adjs[i] = s.adj.Matrix()
	}
	var counts, gates []int64
	var err error
	if energy {
		counts, gates, err = bt.Count.TrianglesEnergyBatch(adjs)
	} else {
		counts, err = bt.Count.TrianglesBatch(adjs)
	}
	if err != nil {
		return err
	}
	for i, s := range live {
		var g int64
		if energy {
			g = gates[i]
		}
		s.dirty = false
		s.screens++
		s.energy += g
		s.lastOK, s.lastCnt, s.lastDec = true, counts[i], counts[i] >= s.tau
		m.screens.Add(1)
		m.energyGates.Add(g)
		*results = append(*results, Result{
			Tenant: s.tenant, Version: s.version, Edges: s.adj.Edges(),
			Screened: true, Count: counts[i], Decision: counts[i] >= s.tau, Energy: g,
		})
	}
	return nil
}

// Close shuts the manager down: every session is retired and
// subsequent operations fail with ErrClosed. The underlying
// serve.Server is not closed — the manager does not own it.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	sessions := make([]*session, 0, m.lru.Len())
	for el := m.lru.Front(); el != nil; el = el.Next() {
		sessions = append(sessions, el.Value.(*session))
	}
	m.lru.Init()
	m.byTenant = make(map[string]*list.Element)
	m.mu.Unlock()
	for _, s := range sessions {
		m.retire(s)
	}
}

// Sessions returns the number of live sessions.
func (m *Manager) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

func checkTenant(tenant string) error {
	if tenant == "" {
		return errors.New("stream: empty tenant id")
	}
	if len(tenant) > maxTenantLen {
		return fmt.Errorf("stream: tenant id %d bytes long, max %d", len(tenant), maxTenantLen)
	}
	return nil
}
