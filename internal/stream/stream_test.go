package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serve"
)

func newTestManager(t *testing.T, cfg Config) (*Manager, *serve.Server) {
	t.Helper()
	srv := serve.New(serve.Config{})
	cfg.Server = srv
	m := NewManager(cfg)
	t.Cleanup(func() {
		m.Close()
		srv.Close()
	})
	return m, srv
}

// randomOps draws a batch of valid edge mutations for an n-vertex
// graph, biased toward insertion.
func randomOps(rng *rand.Rand, n, count int) []EdgeOp {
	ops := make([]EdgeOp, 0, count)
	for len(ops) < count {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		ops = append(ops, EdgeOp{U: u, V: v, Delete: rng.Intn(4) == 0})
	}
	return ops
}

// apply mirrors an op batch onto a shadow bitset.
func apply(t *testing.T, shadow *graph.Bitset, ops []EdgeOp) {
	t.Helper()
	for _, op := range ops {
		if _, err := shadow.Set(op.U, op.V, !op.Delete); err != nil {
			t.Fatal(err)
		}
	}
}

// The full session lifecycle: every screened count must equal the
// shadow oracle's recount, the τ decision must follow, and energy must
// equal the scalar Energy of the same assignment.
func TestStreamLifecycle(t *testing.T) {
	m, srv := newTestManager(t, Config{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(21))
	const n, tau = 8, 3

	if _, err := m.Create(ctx, "acme", n, tau); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(ctx, "acme", n, tau); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	shadow := graph.NewBitset(n)
	bt, err := srv.Built(ctx, coreShapeFor(m, n))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 12; round++ {
		ops := randomOps(rng, n, 1+rng.Intn(6))
		apply(t, shadow, ops)
		res, err := m.Update(ctx, "acme", ops, true, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != uint64(round+1) {
			t.Fatalf("round %d: version %d", round, res.Version)
		}
		if res.Edges != shadow.Edges() {
			t.Fatalf("round %d: edges %d, oracle %d", round, res.Edges, shadow.Edges())
		}
		if !res.Screened || res.Count != shadow.Triangles() {
			t.Fatalf("round %d: count %d (screened=%v), oracle %d", round, res.Count, res.Screened, shadow.Triangles())
		}
		if res.Decision != (res.Count >= tau) {
			t.Fatalf("round %d: decision %v for count %d, τ=%d", round, res.Decision, res.Count, tau)
		}
		in, err := bt.Count.Assign(shadow.Matrix())
		if err != nil {
			t.Fatal(err)
		}
		c := bt.Circuit()
		if want := c.Energy(c.Eval(in)); res.Energy != want {
			t.Fatalf("round %d: energy %d, scalar %d", round, res.Energy, want)
		}
	}
	// Screen without mutation reproduces the last state.
	res, err := m.Screen(ctx, "acme", false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != shadow.Triangles() || res.Energy != 0 {
		t.Fatalf("plain screen: count %d energy %d", res.Count, res.Energy)
	}
	st := m.Stats()
	if st.Sessions != 1 || len(st.Tenants) != 1 {
		t.Fatalf("stats: %d sessions, %d tenants", st.Sessions, len(st.Tenants))
	}
	ten := st.Tenants[0]
	if ten.Tenant != "acme" || ten.Screens != 13 || ten.Energy == 0 {
		t.Fatalf("tenant stats: %+v", ten)
	}
	if err := m.CloseTenant("acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Screen(ctx, "acme", false); !errors.Is(err, ErrNoSession) {
		t.Fatalf("screen after close: %v", err)
	}
	if err := m.CloseTenant("acme"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("double close: %v", err)
	}
}

// coreShapeFor is the count shape a manager uses for n-vertex
// sessions (τ-independent: all same-n tenants share it).
func coreShapeFor(m *Manager, n int) core.Shape {
	return core.Shape{Op: core.OpCount, N: n, Alg: m.cfg.Alg}
}

// A batch with any invalid op must reject atomically: the graph is
// untouched and the version does not advance.
func TestStreamUpdateAtomic(t *testing.T) {
	m, _ := newTestManager(t, Config{})
	ctx := context.Background()
	if _, err := m.Create(ctx, "t", 4, 1); err != nil {
		t.Fatal(err)
	}
	good := []EdgeOp{{U: 0, V: 1}, {U: 1, V: 2}}
	if _, err := m.Update(ctx, "t", good, false, false); err != nil {
		t.Fatal(err)
	}
	bad := []EdgeOp{{U: 2, V: 3}, {U: 1, V: 1}, {U: 0, V: 4}}
	if _, err := m.Update(ctx, "t", bad, false, false); err == nil {
		t.Fatal("invalid batch accepted")
	}
	res, err := m.Update(ctx, "t", nil, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 {
		t.Fatalf("version advanced to %d after rejected/empty batches", res.Version)
	}
	if res.Edges != 2 || res.Count != 0 {
		t.Fatalf("rejected batch leaked: edges %d count %d", res.Edges, res.Count)
	}
}

func TestStreamCreateValidation(t *testing.T) {
	m, _ := newTestManager(t, Config{MaxN: 8})
	ctx := context.Background()
	for _, tc := range []struct {
		tenant string
		n      int
	}{
		{"", 4},
		{string(make([]byte, maxTenantLen+1)), 4},
		{"ok", 0},
		{"ok", 9}, // > MaxN
		{"ok", 3}, // not a power of two: circuit build must fail
		{"ok", -1},
	} {
		if _, err := m.Create(ctx, tc.tenant, tc.n, 0); err == nil {
			t.Fatalf("Create(%q, %d) accepted", tc.tenant, tc.n)
		}
	}
	if m.Sessions() != 0 {
		t.Fatalf("%d sessions after rejected creates", m.Sessions())
	}
}

// Ragged tenant batches through ScreenDirty: 1, 63, 64 (one full
// word), and 65 (word boundary + 1) sessions, counts bit-identical to
// each tenant's shadow oracle and energy identical to the scalar path.
func TestScreenDirtyRagged(t *testing.T) {
	for _, tenants := range []int{1, 63, 64, 65} {
		t.Run(fmt.Sprintf("tenants=%d", tenants), func(t *testing.T) {
			m, srv := newTestManager(t, Config{})
			ctx := context.Background()
			rng := rand.New(rand.NewSource(int64(tenants)))
			const n = 4
			shadows := make(map[string]*graph.Bitset, tenants)
			for i := 0; i < tenants; i++ {
				tenant := fmt.Sprintf("t%03d", i)
				if _, err := m.Create(ctx, tenant, n, 1); err != nil {
					t.Fatal(err)
				}
				ops := randomOps(rng, n, 1+rng.Intn(8))
				sh := graph.NewBitset(n)
				apply(t, sh, ops)
				shadows[tenant] = sh
				if _, err := m.Update(ctx, tenant, ops, false, false); err != nil {
					t.Fatal(err)
				}
			}
			results, err := m.ScreenDirty(ctx, true)
			if err != nil {
				t.Fatal(err)
			}
			// Dirtiness is per-graph change: an op batch that nets out to
			// no change leaves the session clean, so expect one result per
			// tenant whose shadow is non-empty or whose batch changed it.
			// Every created session got ≥1 insert-biased op; sessions whose
			// ops all cancelled may legitimately be clean, so check
			// results against shadows rather than demanding an exact count.
			seen := make(map[string]bool, len(results))
			bt, err := srv.Built(ctx, coreShapeFor(m, n))
			if err != nil {
				t.Fatal(err)
			}
			c := bt.Circuit()
			for _, res := range results {
				if seen[res.Tenant] {
					t.Fatalf("tenant %s screened twice in one sweep", res.Tenant)
				}
				seen[res.Tenant] = true
				sh := shadows[res.Tenant]
				if sh == nil {
					t.Fatalf("unknown tenant %s", res.Tenant)
				}
				if res.Count != sh.Triangles() {
					t.Fatalf("tenant %s: count %d, oracle %d", res.Tenant, res.Count, sh.Triangles())
				}
				in, err := bt.Count.Assign(sh.Matrix())
				if err != nil {
					t.Fatal(err)
				}
				if want := c.Energy(c.Eval(in)); res.Energy != want {
					t.Fatalf("tenant %s: batched energy %d, scalar %d", res.Tenant, res.Energy, want)
				}
			}
			// A second sweep finds nothing dirty.
			again, err := m.ScreenDirty(ctx, true)
			if err != nil {
				t.Fatal(err)
			}
			if len(again) != 0 {
				t.Fatalf("second sweep screened %d sessions", len(again))
			}
		})
	}
}

// Raced property test for eviction mid-update-stream: per-tenant
// updater goroutines maintain shadow bitsets and hammer updates+screens
// while a churn goroutine overflows a tiny session LRU, forcing
// evictions under fire. Invariants: every screened count equals the
// shadow at that moment (no lost updates, no stale screens), a retired
// session answers ErrRetired/ErrNoSession (never silent success), and
// re-created sessions start empty.
func TestStreamEvictionRacedPropertyCheck(t *testing.T) {
	m, _ := newTestManager(t, Config{MaxSessions: 3})
	ctx := context.Background()
	const n = 4
	const tenants = 3
	const churners = 2
	rounds := 60
	if testing.Short() {
		rounds = 15
	}

	var screens atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, tenants+churners)

	for w := 0; w < tenants; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", w)
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var shadow *graph.Bitset
			for round := 0; round < rounds; round++ {
				if shadow == nil {
					if _, err := m.Create(ctx, tenant, n, 2); err != nil {
						if errors.Is(err, ErrExists) {
							// A previous incarnation is still live (we only
							// forget on retirement evidence); drop it.
							_ = m.CloseTenant(tenant)
							continue
						}
						errc <- err
						return
					}
					shadow = graph.NewBitset(n)
				}
				ops := randomOps(rng, n, 1+rng.Intn(4))
				res, err := m.Update(ctx, tenant, ops, true, false)
				switch {
				case err == nil:
					// The update was accepted and screened atomically:
					// the shadow after applying the same ops must agree.
					apply(t, shadow, ops)
					if res.Count != shadow.Triangles() {
						errc <- fmt.Errorf("tenant %s round %d: screened %d, shadow %d",
							tenant, round, res.Count, shadow.Triangles())
						return
					}
					if res.Edges != shadow.Edges() {
						errc <- fmt.Errorf("tenant %s round %d: edges %d, shadow %d",
							tenant, round, res.Edges, shadow.Edges())
						return
					}
					screens.Add(1)
				case errors.Is(err, ErrRetired), errors.Is(err, ErrNoSession):
					// Evicted mid-stream: the update was NOT applied (the
					// whole call failed), so the shadow resets with the
					// session. Next round re-creates.
					shadow = nil
				default:
					errc <- fmt.Errorf("tenant %s round %d: %v", tenant, round, err)
					return
				}
			}
		}(w)
	}
	// Churners create throwaway sessions to overflow the LRU and force
	// evictions of the tenants under test.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				tenant := fmt.Sprintf("churn-%d-%d", c, round)
				if _, err := m.Create(ctx, tenant, n, 1); err != nil &&
					!errors.Is(err, ErrExists) && !errors.Is(err, ErrClosed) {
					errc <- fmt.Errorf("churner %s: %v", tenant, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if screens.Load() == 0 {
		t.Fatal("no successful screens — the race never exercised the happy path")
	}
	st := m.Stats()
	if st.Retirements == 0 {
		t.Fatal("no retirements — the churn never forced an eviction")
	}
	if st.Sessions > 3 {
		t.Fatalf("LRU bound violated: %d sessions", st.Sessions)
	}
}
