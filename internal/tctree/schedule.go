package tctree

import (
	"fmt"
	"math"
)

// Schedule is the increasing sequence of selected recursion levels
// 0 = h_0 < h_1 < ... < h_t = L, where L = log_T N is the height of the
// tree. The circuit materializes only these levels; each transition
// costs depth 2.
type Schedule []int

// Transitions returns t, the number of level transitions.
func (s Schedule) Transitions() int { return len(s) - 1 }

// Validate checks the schedule's defining invariants against height L.
func (s Schedule) Validate(L int) error {
	if len(s) < 1 || s[0] != 0 {
		return fmt.Errorf("tctree: schedule must start at level 0, got %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return fmt.Errorf("tctree: schedule not strictly increasing: %v", s)
		}
	}
	if s[len(s)-1] != L {
		return fmt.Errorf("tctree: schedule must end at L=%d, got %v", L, s)
	}
	return nil
}

// geometric builds h_i = ceil((1 - γ^i)·ρ) capped at L, deduplicated,
// terminated when L is reached (Lemma 4.3's level selection).
func geometric(gamma, rho float64, L int) Schedule {
	s := Schedule{0}
	if L == 0 {
		return s
	}
	if gamma <= 0 {
		// Degenerate γ (naive algorithm): one jump to the leaves.
		return append(s, L)
	}
	gpow := 1.0
	for i := 1; ; i++ {
		gpow *= gamma
		h := int(math.Ceil((1 - gpow) * rho))
		if h > L {
			h = L
		}
		if h > s[len(s)-1] {
			s = append(s, h)
		}
		if s[len(s)-1] == L {
			return s
		}
		if i > 10*L+100 {
			// ρ too small for γ-geometric progress to ever reach L;
			// force the final level (callers validate t separately).
			return append(s, L)
		}
	}
}

// ConstantDepth returns the Theorem 4.5 / 4.9 schedule for tree height L
// and depth parameter d >= 1: ρ = L·(1 + γ^d/(1-γ)), which guarantees at
// most d transitions (h_d = L).
//
// Derivation: the theorem sets ρ = log_T N + ε·log_{αβ} N with
// ε = γ^d·log_T(αβ)/(1-γ); substituting log_{αβ} N = L·log T / log(αβ)
// collapses ρ to L·(1 + γ^d/(1-γ)).
func ConstantDepth(gamma float64, L, d int) Schedule {
	if d < 1 {
		panic(fmt.Sprintf("tctree: ConstantDepth d=%d < 1", d))
	}
	if gamma <= 0 {
		return geometric(0, float64(L), L)
	}
	rho := float64(L) * (1 + math.Pow(gamma, float64(d))/(1-gamma))
	return geometric(gamma, rho, L)
}

// LogLog returns the Theorem 4.4 / 4.8 schedule: ρ = L and
// t = floor(log_{1/γ} L) + 1 transitions, achieving Õ(N^ω) gates at
// depth O(log log N).
func LogLog(gamma float64, L int) Schedule {
	return geometric(gamma, float64(L), L)
}

// Uniform returns the "natural strategy" h_i = ceil(i·L/t) that the
// paper notes yields a weaker result (Section 4.3, after Lemma 4.3).
// Kept as the E9 ablation baseline.
func Uniform(L, t int) Schedule {
	if t < 1 {
		panic(fmt.Sprintf("tctree: Uniform t=%d < 1", t))
	}
	if t > L {
		t = L
	}
	s := Schedule{0}
	for i := 1; i <= t; i++ {
		h := (i*L + t - 1) / t
		if h > s[len(s)-1] {
			s = append(s, h)
		}
	}
	return s
}

// Direct returns the single-jump schedule {0, L}: compute the leaves
// straight from the inputs, the Õ(N^{1+ω})-gate strawman of Section 4.2.
func Direct(L int) Schedule {
	if L == 0 {
		return Schedule{0}
	}
	return Schedule{0, L}
}

// LogLogTransitions returns the closed-form bound on t used by Theorem
// 4.4: floor(log_{1/γ} L) + 1 (for L >= 1, 0 < γ < 1).
func LogLogTransitions(gamma float64, L int) int {
	if L <= 1 || gamma <= 0 || gamma >= 1 {
		return 1
	}
	return int(math.Floor(math.Log(float64(L))/math.Log(1/gamma))) + 1
}
