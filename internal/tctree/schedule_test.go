package tctree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bilinear"
)

func strassenGamma() float64 { return bilinear.Strassen().Params().Gamma }

// Theorem 4.5's guarantee: the constant-depth schedule reaches the
// leaves in at most d transitions, for every (L, d) in range.
func TestConstantDepthReachesLeaves(t *testing.T) {
	gamma := strassenGamma()
	for L := 1; L <= 24; L++ {
		for d := 1; d <= 8; d++ {
			s := ConstantDepth(gamma, L, d)
			if err := s.Validate(L); err != nil {
				t.Fatalf("L=%d d=%d: %v", L, d, err)
			}
			if s.Transitions() > d {
				t.Errorf("L=%d d=%d: %d transitions > d (schedule %v)", L, d, s.Transitions(), s)
			}
		}
	}
}

// Theorem 4.4's loglog bound: t <= floor(log_{1/γ} L) + 1.
func TestLogLogTransitionsBound(t *testing.T) {
	gamma := strassenGamma()
	for L := 1; L <= 24; L++ {
		s := LogLog(gamma, L)
		if err := s.Validate(L); err != nil {
			t.Fatalf("L=%d: %v", L, err)
		}
		if bound := LogLogTransitions(gamma, L); s.Transitions() > bound {
			t.Errorf("L=%d: t=%d exceeds loglog bound %d (schedule %v)", L, s.Transitions(), bound, s)
		}
	}
}

// The loglog schedule grows like log log N, not like d or L: doubling L
// repeatedly increases t by at most 1 eventually.
func TestLogLogGrowth(t *testing.T) {
	gamma := strassenGamma()
	t8 := LogLog(gamma, 8).Transitions()
	t16 := LogLog(gamma, 16).Transitions()
	t1024 := LogLog(gamma, 1024).Transitions()
	if t16 < t8 {
		t.Errorf("transitions decreased: t(8)=%d t(16)=%d", t8, t16)
	}
	// log_{1/gamma}(1024) ≈ 9.7 -> about 10 transitions; far below 1024.
	if t1024 > 12 {
		t.Errorf("t(1024) = %d, expected ~10", t1024)
	}
}

func TestUniformSchedule(t *testing.T) {
	s := Uniform(12, 4)
	if err := s.Validate(12); err != nil {
		t.Fatal(err)
	}
	want := Schedule{0, 3, 6, 9, 12}
	if len(s) != len(want) {
		t.Fatalf("uniform schedule %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("uniform schedule %v, want %v", s, want)
		}
	}
	// t > L collapses to unit steps.
	s = Uniform(3, 10)
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	if s.Transitions() != 3 {
		t.Errorf("Uniform(3, 10) has %d transitions, want 3", s.Transitions())
	}
}

func TestDirectSchedule(t *testing.T) {
	s := Direct(5)
	if err := s.Validate(5); err != nil {
		t.Fatal(err)
	}
	if s.Transitions() != 1 {
		t.Errorf("direct schedule %v should have 1 transition", s)
	}
	if Direct(0).Transitions() != 0 {
		t.Error("Direct(0) should be trivial")
	}
}

// Degenerate γ = 0 (naive algorithm): one jump.
func TestConstantDepthDegenerateGamma(t *testing.T) {
	s := ConstantDepth(0, 6, 3)
	if err := s.Validate(6); err != nil {
		t.Fatal(err)
	}
	if s.Transitions() != 1 {
		t.Errorf("γ=0 schedule %v, want single jump", s)
	}
}

// Geometric schedules front-load progress: the first step of the
// constant-depth schedule covers more levels than the uniform split
// (for d >= 2 and L large enough), which is exactly why it wins.
func TestGeometricFrontLoads(t *testing.T) {
	gamma := strassenGamma()
	for _, L := range []int{12, 16, 24} {
		for _, d := range []int{3, 4} {
			geo := ConstantDepth(gamma, L, d)
			uni := Uniform(L, geo.Transitions())
			if geo[1] <= uni[1] {
				t.Errorf("L=%d d=%d: geometric first step %d <= uniform %d", L, d, geo[1], uni[1])
			}
		}
	}
}

// Larger d never increases ρ, so schedules for larger d reach the leaves
// no sooner per step but with more, finer transitions.
func TestConstantDepthMonotoneTransitions(t *testing.T) {
	gamma := strassenGamma()
	for L := 4; L <= 20; L += 4 {
		prev := 0
		for d := 1; d <= 6; d++ {
			tt := ConstantDepth(gamma, L, d).Transitions()
			if tt < prev {
				t.Errorf("L=%d: transitions decreased from %d to %d at d=%d", L, prev, tt, d)
			}
			prev = tt
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		s Schedule
		L int
	}{
		{Schedule{1, 2}, 2},    // doesn't start at 0
		{Schedule{0, 2, 2}, 2}, // not strictly increasing
		{Schedule{0, 1}, 2},    // doesn't end at L
		{Schedule{}, 2},        // empty
	}
	for i, c := range cases {
		if err := c.s.Validate(c.L); err == nil {
			t.Errorf("case %d: Validate accepted %v for L=%d", i, c.s, c.L)
		}
	}
}

// Property: every generated schedule validates and h_i <= L.
func TestSchedulePropertyValid(t *testing.T) {
	gamma := strassenGamma()
	prop := func(lRaw, dRaw uint8) bool {
		L := 1 + int(lRaw)%30
		d := 1 + int(dRaw)%10
		for _, s := range []Schedule{
			ConstantDepth(gamma, L, d),
			LogLog(gamma, L),
			Uniform(L, d),
			Direct(L),
		} {
			if err := s.Validate(L); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Sanity on the ρ collapse in ConstantDepth's doc comment: with
// Strassen's constants, ρ = L(1 + γ^d/(1−γ)) must exceed L and approach
// L as d grows.
func TestRhoApproachesL(t *testing.T) {
	gamma := strassenGamma()
	rho := func(L, d int) float64 {
		return float64(L) * (1 + math.Pow(gamma, float64(d))/(1-gamma))
	}
	if rho(16, 1) <= 16 {
		t.Error("rho should exceed L")
	}
	if rho(16, 12) > 16.1 {
		t.Errorf("rho(16, 12) = %v, should approach 16", rho(16, 12))
	}
}
