// Package tctree implements the recursion trees of Section 4: T_A and
// T_B (Figure 2), whose nodes are weighted sums of blocks of the input
// matrices; the dual tree T_G used for the trace circuit's third linear
// form (equation 4); and the coefficient structure of the bottom-up
// product tree T_AB (Section 4.4), which shares its grids with T_G.
//
// A node at level h of an r-ary tree is a path (k_1, ..., k_h) ∈ [r]^h.
// Relative to an ancestor at level h' = h − δ, the node's matrix is a
// weighted sum of blocks of the ancestor's matrix on the T^δ x T^δ block
// grid; CoefGrid returns those weights. The number of nonzero weights is
// the paper's size(u), the product of the per-edge labels a_{k_i}
// (Figure 2), and satisfies the multinomial identities (3) and (5):
// summed over all r^δ relative paths it equals s^δ.
package tctree

import (
	"fmt"

	"repro/internal/bilinear"
	"repro/internal/bitio"
)

// Tree is one of the paper's recursion trees, determined by a bilinear
// algorithm and a per-step coefficient table: step[k][i*T+j] is the
// weight of ancestor block (i,j) in child k.
type Tree struct {
	Alg  *bilinear.Algorithm
	Kind string
	step [][]int64 // R x T²
}

// NewTreeA returns T_A: child k of a node U is the A-side linear form
// M_k applied to U's blocks (Figure 2).
func NewTreeA(alg *bilinear.Algorithm) *Tree {
	return &Tree{Alg: alg, Kind: "A", step: alg.A}
}

// NewTreeB returns T_B, the B-side analogue.
func NewTreeB(alg *bilinear.Algorithm) *Tree {
	return &Tree{Alg: alg, Kind: "B", step: alg.B}
}

// NewTreeG returns the dual tree used twice by the constructions:
//
//   - Top-down on the masked matrix G, it computes the trace circuit's
//     third linear form (equation 4): leaf q holds
//     Σ_{x,y} G_xy · (coefficient of product p_q in C_xy).
//   - Read bottom-up, its grids are the T_AB combination weights of
//     Section 4.4: CoefGrid(q)[X][Y] is the weight of descendant path q
//     in block (X, Y) of the ancestor.
//
// Its per-step table is the transpose of the algorithm's C expressions:
// step[k][x*T+y] = C[x*T+y][k], so its branching sparsity is s_C.
func NewTreeG(alg *bilinear.Algorithm) *Tree {
	t2 := alg.T * alg.T
	step := make([][]int64, alg.R)
	for k := 0; k < alg.R; k++ {
		row := make([]int64, t2)
		for e := 0; e < t2; e++ {
			row[e] = alg.C[e][k]
		}
		step[k] = row
	}
	return &Tree{Alg: alg, Kind: "G", step: step}
}

// StepNonzeros returns, per product index k, the number of nonzero
// entries in the step table: the edge labels of Figure 2 (a_k for T_A,
// b_k for T_B, c_k for T_G/T_AB).
func (t *Tree) StepNonzeros() []int {
	out := make([]int, t.Alg.R)
	for k, row := range t.step {
		for _, w := range row {
			if w != 0 {
				out[k]++
			}
		}
	}
	return out
}

// Grid is a dense T^δ x T^δ coefficient grid over the block positions of
// an ancestor δ levels up.
type Grid struct {
	Dim  int // T^δ
	Coef []int64
}

// At returns the coefficient of block (i, j).
func (g *Grid) At(i, j int) int64 { return g.Coef[i*g.Dim+j] }

// Nonzeros returns the paper's size(u): the number of ancestor blocks
// with nonzero weight.
func (g *Grid) Nonzeros() int64 {
	var n int64
	for _, w := range g.Coef {
		if w != 0 {
			n++
		}
	}
	return n
}

// MaxAbs returns the largest absolute coefficient in the grid.
func (g *Grid) MaxAbs() int64 {
	var mx int64
	for _, w := range g.Coef {
		if a := bitio.Abs(w); a > mx {
			mx = a
		}
	}
	return mx
}

// CoefGrid returns the coefficient grid of the node reached from an
// ancestor by relPath (earliest step first). The recursion is
//
//	grid(k·q)[i·T^{δ-1}+x][j·T^{δ-1}+y] = step[k][i*T+j] · grid(q)[x][y].
func (t *Tree) CoefGrid(relPath []int) *Grid {
	T := t.Alg.T
	g := &Grid{Dim: 1, Coef: []int64{1}}
	// Build from the innermost (last) step outward so each prepended
	// step scales the whole grid into the larger block structure.
	for s := len(relPath) - 1; s >= 0; s-- {
		k := relPath[s]
		if k < 0 || k >= t.Alg.R {
			panic(fmt.Sprintf("tctree: path step %d out of range [0,%d)", k, t.Alg.R))
		}
		nd := g.Dim * T
		ng := &Grid{Dim: nd, Coef: make([]int64, nd*nd)}
		for i := 0; i < T; i++ {
			for j := 0; j < T; j++ {
				w := t.step[k][i*T+j]
				if w == 0 {
					continue
				}
				for x := 0; x < g.Dim; x++ {
					base := (i*g.Dim+x)*nd + j*g.Dim
					src := x * g.Dim
					for y := 0; y < g.Dim; y++ {
						ng.Coef[base+y] = w * g.Coef[src+y]
					}
				}
			}
		}
		g = ng
	}
	return g
}

// Size returns size(u) for the node with the given relative path: the
// product of the per-edge labels, without materializing the grid.
func (t *Tree) Size(relPath []int) int64 {
	nz := t.StepNonzeros()
	s := int64(1)
	for _, k := range relPath {
		s = bitio.MulCheck(s, int64(nz[k]))
	}
	return s
}

// Paths invokes f with every path in [r]^delta in lexicographic order
// (path index = big-endian base-r number). The slice passed to f is
// reused between calls; copy it to retain.
func Paths(r, delta int, f func(index int64, path []int)) {
	path := make([]int, delta)
	var rec func(pos int, index int64)
	rec = func(pos int, index int64) {
		if pos == delta {
			f(index, path)
			return
		}
		for k := 0; k < r; k++ {
			path[pos] = k
			rec(pos+1, index*int64(r)+int64(k))
		}
	}
	rec(0, 0)
}

// Path returns the path in [r]^delta with the given lexicographic index
// (the inverse of the index Paths reports): the digits of index written
// big-endian in base r. It is the random-access companion to Paths that
// lets independent workers materialize disjoint path ranges without
// enumerating a shared prefix.
func Path(r, delta int, index int64) []int {
	max := int64(1)
	for i := 0; i < delta; i++ {
		max *= int64(r)
	}
	if index < 0 || index >= max {
		panic(fmt.Sprintf("tctree: path index %d out of range [0,%d)", index, max))
	}
	p := make([]int, delta)
	for i := delta - 1; i >= 0; i-- {
		p[i] = int(index % int64(r))
		index /= int64(r)
	}
	return p
}

// SizeSum returns Σ size(u) over all relative paths of length delta; by
// the multinomial identities (3) and (5) this equals (Σ_k nz_k)^delta
// (s_A^δ for T_A, s_C^δ for T_G/T_AB). Computed directly for testing the
// identity rather than via the closed form.
func (t *Tree) SizeSum(delta int) int64 {
	var sum int64
	Paths(t.Alg.R, delta, func(_ int64, p []int) {
		sum = bitio.AddCheck(sum, t.Size(p))
	})
	return sum
}
