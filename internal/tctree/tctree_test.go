package tctree

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/bitio"
	"repro/internal/matrix"
)

// Figure 2's edge labels for Strassen's T_A: the number of A-blocks in
// M_1..M_7 is (1, 2, 2, 1, 2, 2, 2).
func TestStrassenEdgeLabels(t *testing.T) {
	ta := NewTreeA(bilinear.Strassen())
	want := []int{1, 2, 2, 1, 2, 2, 2}
	got := ta.StepNonzeros()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("a_%d = %d, want %d", i+1, got[i], want[i])
		}
	}
	// T_G's labels are Strassen's c_k: how many C expressions contain M_k.
	tg := NewTreeG(bilinear.Strassen())
	wantC := []int{2, 2, 2, 2, 2, 1, 1}
	gotC := tg.StepNonzeros()
	for i := range wantC {
		if gotC[i] != wantC[i] {
			t.Errorf("c_%d = %d, want %d", i+1, gotC[i], wantC[i])
		}
	}
}

// Equation (3): Σ_{u} size(u) over all relative paths of length δ equals
// s_A^δ — and likewise (5) with s_C for the dual tree. Checked by
// explicit enumeration for several algorithms and depths.
func TestMultinomialIdentity(t *testing.T) {
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Winograd(), bilinear.Naive()} {
		p := alg.Params()
		for delta := 1; delta <= 4; delta++ {
			if got, want := NewTreeA(alg).SizeSum(delta), bitio.Pow(p.SA, delta); got != want {
				t.Errorf("%s delta=%d: Σ size (T_A) = %d, want s_A^δ = %d", alg.Name, delta, got, want)
			}
			if got, want := NewTreeB(alg).SizeSum(delta), bitio.Pow(p.SB, delta); got != want {
				t.Errorf("%s delta=%d: Σ size (T_B) = %d, want s_B^δ = %d", alg.Name, delta, got, want)
			}
			if got, want := NewTreeG(alg).SizeSum(delta), bitio.Pow(p.SC, delta); got != want {
				t.Errorf("%s delta=%d: Σ size (T_G) = %d, want s_C^δ = %d", alg.Name, delta, got, want)
			}
		}
	}
}

// size(u) computed from edge labels equals the grid's nonzero count.
func TestSizeMatchesGrid(t *testing.T) {
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Winograd()} {
		for _, tree := range []*Tree{NewTreeA(alg), NewTreeB(alg), NewTreeG(alg)} {
			for delta := 1; delta <= 3; delta++ {
				Paths(alg.R, delta, func(_ int64, p []int) {
					g := tree.CoefGrid(p)
					if g.Nonzeros() != tree.Size(p) {
						t.Fatalf("%s/%s path %v: grid nnz %d != size %d",
							alg.Name, tree.Kind, p, g.Nonzeros(), tree.Size(p))
					}
				})
			}
		}
	}
}

// Grid composition: grid(q1·q2) is the tensor of grid(q1) and grid(q2).
func TestGridComposition(t *testing.T) {
	alg := bilinear.Strassen()
	ta := NewTreeA(alg)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		d1 := 1 + rng.Intn(2)
		d2 := 1 + rng.Intn(2)
		q1 := make([]int, d1)
		q2 := make([]int, d2)
		for i := range q1 {
			q1[i] = rng.Intn(alg.R)
		}
		for i := range q2 {
			q2[i] = rng.Intn(alg.R)
		}
		g1 := ta.CoefGrid(q1)
		g2 := ta.CoefGrid(q2)
		g12 := ta.CoefGrid(append(append([]int{}, q1...), q2...))
		if g12.Dim != g1.Dim*g2.Dim {
			t.Fatalf("composed dim %d != %d*%d", g12.Dim, g1.Dim, g2.Dim)
		}
		for i := 0; i < g1.Dim; i++ {
			for j := 0; j < g1.Dim; j++ {
				for x := 0; x < g2.Dim; x++ {
					for y := 0; y < g2.Dim; y++ {
						want := g1.At(i, j) * g2.At(x, y)
						got := g12.At(i*g2.Dim+x, j*g2.Dim+y)
						if got != want {
							t.Fatalf("composition mismatch at (%d,%d,%d,%d)", i, j, x, y)
						}
					}
				}
			}
		}
	}
}

// Figure 2's worked example: (A12 − A22)12 − (A12 − A22)22 is a weighted
// sum of 4 blocks of A: +(A12)12 −(A22)12 −(A12)22 +(A22)22.
// In Strassen's numbering M7 = (A12 − A22)(B21 + B22) and
// M1 = A11(B12 − B22); the figure's node is path (M7, M1) on the A side,
// since M1's A-form selects block 12 of its input... it selects A11.
// The figure's second-level expression (U)12 − (U)22 is M7's A-form
// applied again: path (7-1, 7-1) zero-indexed = (6, 6).
func TestFigure2Node(t *testing.T) {
	ta := NewTreeA(bilinear.Strassen())
	g := ta.CoefGrid([]int{6, 6}) // M7 twice: (A12−A22)12 − (A12−A22)22
	if g.Dim != 4 {
		t.Fatalf("dim = %d, want 4", g.Dim)
	}
	// Blocks of A on the 4x4 grid of quarter-blocks: (A12)12 is block
	// row 0 col 1 of A12 which sits at rows 0-1, cols 2-3 -> grid (0, 3).
	wantNonzero := map[[2]int]int64{
		{0, 3}: 1,  // +(A12)12
		{2, 3}: -1, // −(A22)12
		{1, 3}: -1, // −(A12)22
		{3, 3}: 1,  // +(A22)22
	}
	if g.Nonzeros() != 4 {
		t.Fatalf("size = %d, want 4 (Figure 2)", g.Nonzeros())
	}
	for pos, w := range wantNonzero {
		if g.At(pos[0], pos[1]) != w {
			t.Errorf("grid[%d][%d] = %d, want %d", pos[0], pos[1], g.At(pos[0], pos[1]), w)
		}
	}
}

// leafValues computes all leaf scalars of a tree over a concrete matrix
// by expanding the full-depth coefficient grids (host-side reference).
func leafValues(tree *Tree, m *matrix.Matrix) []int64 {
	L := bitio.Log(tree.Alg.T, m.Rows)
	total := bitio.Pow(tree.Alg.R, L)
	out := make([]int64, total)
	Paths(tree.Alg.R, L, func(idx int64, p []int) {
		g := tree.CoefGrid(p)
		var v int64
		for i := 0; i < g.Dim; i++ {
			for j := 0; j < g.Dim; j++ {
				if w := g.At(i, j); w != 0 {
					v += w * m.At(i, j)
				}
			}
		}
		out[idx] = v
	})
	return out
}

// The fundamental reconstruction identity behind T_AB (Section 4.4):
// with p_q = leafA_q · leafB_q, entry (x, y) of C = AB equals
// Σ_q gridG(q)[x][y] · p_q. This validates the T_G/T_AB coefficient
// structure end to end, for several algorithms and sizes.
func TestProductReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Winograd(), bilinear.Naive()} {
		for _, L := range []int{1, 2} {
			n := int(bitio.Pow(alg.T, L))
			a := matrix.Random(rng, n, n, -5, 5)
			b := matrix.Random(rng, n, n, -5, 5)
			want := a.Mul(b)

			leafA := leafValues(NewTreeA(alg), a)
			leafB := leafValues(NewTreeB(alg), b)
			tg := NewTreeG(alg)

			got := matrix.New(n, n)
			Paths(alg.R, L, func(idx int64, p []int) {
				g := tg.CoefGrid(p)
				pq := leafA[idx] * leafB[idx]
				if pq == 0 {
					return
				}
				for x := 0; x < n; x++ {
					for y := 0; y < n; y++ {
						if w := g.At(x, y); w != 0 {
							got.Set(x, y, got.At(x, y)+w*pq)
						}
					}
				}
			})
			if !got.Equal(want) {
				t.Errorf("%s L=%d: reconstruction mismatch\ngot\n%v\nwant\n%v", alg.Name, L, got, want)
			}
		}
	}
}

// The trace identity (equation 4): Σ_q leafA_q·leafB_q·leafG_q over the
// masked matrix G (G_ij = A_ij for i<j else 0) equals trace(A³)/2.
func TestTraceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, alg := range []*bilinear.Algorithm{bilinear.Strassen(), bilinear.Winograd()} {
		for _, L := range []int{1, 2} {
			n := int(bitio.Pow(alg.T, L))
			// Symmetric integer matrix with zero diagonal (adjacency-like
			// but with general weights to stress signs).
			a := matrix.New(n, n)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					v := rng.Int63n(7) - 3
					a.Set(i, j, v)
					a.Set(j, i, v)
				}
			}
			g := matrix.New(n, n)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					g.Set(i, j, a.At(i, j))
				}
			}
			leafA := leafValues(NewTreeA(alg), a)
			leafB := leafValues(NewTreeB(alg), a)
			leafG := leafValues(NewTreeG(alg), g)
			var sum int64
			for q := range leafA {
				sum += leafA[q] * leafB[q] * leafG[q]
			}
			if want := a.TraceCube() / 2; sum != want {
				t.Errorf("%s L=%d: Σ p_q·q_q = %d, want trace(A³)/2 = %d", alg.Name, L, sum, want)
			}
		}
	}
}

func TestPathsEnumeration(t *testing.T) {
	var seen []int64
	Paths(3, 2, func(idx int64, p []int) {
		if int64(p[0]*3+p[1]) != idx {
			t.Fatalf("path %v has index %d", p, idx)
		}
		seen = append(seen, idx)
	})
	if len(seen) != 9 {
		t.Fatalf("enumerated %d paths, want 9", len(seen))
	}
	for i, idx := range seen {
		if int64(i) != idx {
			t.Fatal("paths not in lexicographic order")
		}
	}
}

func TestCoefGridBadPathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad path step did not panic")
		}
	}()
	NewTreeA(bilinear.Strassen()).CoefGrid([]int{7})
}
