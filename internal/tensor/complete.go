package tensor

import (
	"fmt"

	"repro/internal/ratlin"
)

// SolveThird completes a rank decomposition of ⟨T,T,T⟩ in trace
// coordinates: given the first two factor lists, it solves the exact
// linear system Σ_r first_r(a)·second_r(b)·x_r(c) = E(a,b,c) for the
// third. The system decouples by the index c into T² independent
// subsystems of T⁴ equations in R unknowns each, solved exactly over
// the rationals. It errors if no third factor exists (the guess for
// the first two factors is wrong) or if the solution is not integral
// (this library's algorithms use integer weights).
//
// Because the tensor is cyclic-invariant in trace coordinates, the same
// routine recovers any one missing factor:
//
//	W from (U, V): SolveThird(U, V)
//	U from (V, W): SolveThird(V, W)
//	V from (W, U): SolveThird(W, U)
func SolveThird(t int, first, second [][]int64) ([][]int64, error) {
	r := len(first)
	if len(second) != r {
		return nil, fmt.Errorf("tensor: factor lists have ranks %d and %d", r, len(second))
	}
	t2 := t * t
	e := MatMul(t)
	out := make([][]int64, r)
	for k := range out {
		out[k] = make([]int64, t2)
	}
	for c := 0; c < t2; c++ {
		sys := ratlin.NewSystem(t2*t2, r)
		for a := 0; a < t2; a++ {
			for b := 0; b < t2; b++ {
				row := a*t2 + b
				for k := 0; k < r; k++ {
					sys.SetCoef(row, k, first[k][a]*second[k][b])
				}
				sys.SetRHS(row, e.At(a, b, c))
			}
		}
		x, _, err := sys.Solve()
		if err != nil {
			return nil, fmt.Errorf("tensor: no third factor exists (index %d): %w", c, err)
		}
		for k := 0; k < r; k++ {
			if !x[k].IsInt() {
				// The particular solution may be non-integral while an
				// integral one exists (underdetermined subsystems);
				// report rather than guess.
				return nil, fmt.Errorf("tensor: solved weight %s at (product %d, index %d) is not an integer",
					x[k].RatString(), k, c)
			}
			out[k][c] = x[k].Num().Int64()
		}
	}
	return out, nil
}

// Complete fills in the single nil factor of a partial decomposition
// and verifies the result. Exactly one of d.U, d.V, d.W must be nil.
func Complete(d *Decomposition) (*Decomposition, error) {
	nilCount := 0
	if d.U == nil {
		nilCount++
	}
	if d.V == nil {
		nilCount++
	}
	if d.W == nil {
		nilCount++
	}
	if nilCount != 1 {
		return nil, fmt.Errorf("tensor: Complete needs exactly one unknown factor, have %d", nilCount)
	}
	out := &Decomposition{T: d.T, R: d.R, U: d.U, V: d.V, W: d.W}
	var err error
	switch {
	case d.W == nil:
		out.W, err = SolveThird(d.T, d.U, d.V)
	case d.U == nil:
		out.U, err = SolveThird(d.T, d.V, d.W)
	case d.V == nil:
		out.V, err = SolveThird(d.T, d.W, d.U)
	}
	if err != nil {
		return nil, err
	}
	if err := out.Verify(); err != nil {
		return nil, err
	}
	return out, nil
}
