package tensor

import (
	"testing"

	"repro/internal/bilinear"
)

// Erase each factor of Strassen's decomposition in turn and recover it
// from the other two; the completed decomposition must verify (the
// recovered factor may differ from the original if the system is
// underdetermined, but Verify pins correctness).
func TestCompleteRecoversStrassen(t *testing.T) {
	for _, erase := range []string{"U", "V", "W"} {
		d := FromAlgorithm(bilinear.Strassen())
		switch erase {
		case "U":
			d.U = nil
		case "V":
			d.V = nil
		case "W":
			d.W = nil
		}
		got, err := Complete(d)
		if err != nil {
			t.Fatalf("erase %s: %v", erase, err)
		}
		if err := got.Verify(); err != nil {
			t.Errorf("erase %s: completed decomposition invalid: %v", erase, err)
		}
		alg := got.ToAlgorithm("recovered")
		if err := alg.Verify(); err != nil {
			t.Errorf("erase %s: recovered algorithm invalid: %v", erase, err)
		}
	}
}

// The same works for Winograd and the naive algorithm.
func TestCompleteOtherAlgorithms(t *testing.T) {
	for _, alg := range []*bilinear.Algorithm{bilinear.Winograd(), bilinear.Naive()} {
		d := FromAlgorithm(alg)
		d.W = nil
		if _, err := Complete(d); err != nil {
			t.Errorf("%s: %v", alg.Name, err)
		}
	}
}

// A wrong factor pair is rejected (no consistent completion exists).
func TestCompleteDetectsWrongGuess(t *testing.T) {
	d := FromAlgorithm(bilinear.Strassen())
	d.U[0][0] = 5 // corrupt a U-form
	d.W = nil
	if _, err := Complete(d); err == nil {
		t.Error("corrupted factors completed successfully")
	}
}

// Exactly one factor must be missing.
func TestCompleteArity(t *testing.T) {
	d := FromAlgorithm(bilinear.Strassen())
	if _, err := Complete(d); err == nil {
		t.Error("nothing to complete accepted")
	}
	d.U, d.V = nil, nil
	if _, err := Complete(d); err == nil {
		t.Error("two missing factors accepted")
	}
}

// Rank deficit: erasing W AND dropping a product makes completion
// impossible (rank 6 cannot express 2x2 matmul — Strassen is optimal).
func TestCompleteRankSixImpossible(t *testing.T) {
	d := FromAlgorithm(bilinear.Strassen())
	d.U = d.U[:6]
	d.V = d.V[:6]
	d.R = 6
	d.W = nil
	if _, err := Complete(d); err == nil {
		t.Error("rank-6 2x2 multiplication should be impossible (rank of ⟨2,2,2⟩ is 7)")
	}
}
