// Package tensor implements the tensor perspective of fast matrix
// multiplication that the paper points to ("our techniques extend to
// the more general tensor perspective of fast matrix multiplication",
// Section 2.1, citing Bläser's survey).
//
// The T x T matrix multiplication tensor, in trace coordinates, is
//
//	⟨T,T,T⟩ = Σ_{i,j,k} e_{ij} ⊗ e_{jk} ⊗ e_{ki},
//
// the trilinear form tr(A·B·C). A rank-R decomposition is a list of
// triples (u_r, v_r, w_r) of T²-vectors with
//
//	⟨T,T,T⟩ = Σ_r u_r ⊗ v_r ⊗ w_r,
//
// and is exactly a bilinear fast multiplication algorithm with R scalar
// products: Strassen's algorithm is a rank-7 decomposition of ⟨2,2,2⟩.
//
// In trace coordinates the tensor is invariant under cyclically
// rotating the three factors, so every decomposition yields two more by
// rotation — distinct, automatically-correct algorithms with permuted
// sparsity profiles (s_A, s_B, s_C). The package converts between
// decompositions and bilinear.Algorithm values, expands decompositions
// to explicit tensors for verification, and implements the rotations.
package tensor

import (
	"fmt"

	"repro/internal/bilinear"
)

// Tensor is a dense order-3 tensor over T² x T² x T² (trace
// coordinates: indices (i,j), (j,k), (k,i) row-major).
type Tensor struct {
	T    int
	Data []int64 // [a*T⁴ + b*T² + c] for a,b,c in [T²]
}

// NewTensor returns the zero tensor for T x T matrices.
func NewTensor(t int) *Tensor {
	t2 := t * t
	return &Tensor{T: t, Data: make([]int64, t2*t2*t2)}
}

// At returns entry (a, b, c) with a, b, c in [T²].
func (x *Tensor) At(a, b, c int) int64 {
	t2 := x.T * x.T
	return x.Data[(a*t2+b)*t2+c]
}

// set adds v at (a, b, c).
func (x *Tensor) add(a, b, c int, v int64) {
	t2 := x.T * x.T
	x.Data[(a*t2+b)*t2+c] += v
}

// Equal reports exact equality.
func (x *Tensor) Equal(y *Tensor) bool {
	if x.T != y.T {
		return false
	}
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			return false
		}
	}
	return true
}

// MatMul returns the T x T matrix multiplication tensor in trace
// coordinates: entry ((i,j),(j',k),(k',i')) = [j=j'][k=k'][i=i'].
func MatMul(t int) *Tensor {
	x := NewTensor(t)
	for i := 0; i < t; i++ {
		for j := 0; j < t; j++ {
			for k := 0; k < t; k++ {
				x.add(i*t+j, j*t+k, k*t+i, 1)
			}
		}
	}
	return x
}

// Decomposition is a rank-R decomposition of ⟨T,T,T⟩ in trace
// coordinates: U, V, W are R x T².
type Decomposition struct {
	T       int
	R       int
	U, V, W [][]int64
}

// FromAlgorithm converts a bilinear algorithm to trace coordinates:
// U = algorithm A-forms, V = B-forms, and W_r[(k,i)] = C[i*T+k][r]
// (the output index transposed, because tr(ABC) pairs C_ki with
// (AB)_ik).
func FromAlgorithm(alg *bilinear.Algorithm) *Decomposition {
	t := alg.T
	t2 := t * t
	d := &Decomposition{T: t, R: alg.R}
	for r := 0; r < alg.R; r++ {
		u := append([]int64(nil), alg.A[r]...)
		v := append([]int64(nil), alg.B[r]...)
		w := make([]int64, t2)
		for k := 0; k < t; k++ {
			for i := 0; i < t; i++ {
				w[k*t+i] = alg.C[i*t+k][r]
			}
		}
		d.U = append(d.U, u)
		d.V = append(d.V, v)
		d.W = append(d.W, w)
	}
	return d
}

// ToAlgorithm converts back to the bilinear form (inverse of
// FromAlgorithm) with the given name.
func (d *Decomposition) ToAlgorithm(name string) *bilinear.Algorithm {
	t := d.T
	t2 := t * t
	alg := &bilinear.Algorithm{Name: name, T: t, R: d.R}
	for r := 0; r < d.R; r++ {
		alg.A = append(alg.A, append([]int64(nil), d.U[r]...))
		alg.B = append(alg.B, append([]int64(nil), d.V[r]...))
	}
	alg.C = make([][]int64, t2)
	for i := 0; i < t; i++ {
		for k := 0; k < t; k++ {
			row := make([]int64, d.R)
			for r := 0; r < d.R; r++ {
				row[r] = d.W[r][k*t+i]
			}
			alg.C[i*t+k] = row
		}
	}
	return alg
}

// Evaluate expands Σ_r u_r ⊗ v_r ⊗ w_r to a dense tensor.
func (d *Decomposition) Evaluate() *Tensor {
	x := NewTensor(d.T)
	t2 := d.T * d.T
	for r := 0; r < d.R; r++ {
		for a := 0; a < t2; a++ {
			ua := d.U[r][a]
			if ua == 0 {
				continue
			}
			for b := 0; b < t2; b++ {
				vb := d.V[r][b]
				if vb == 0 {
					continue
				}
				for c := 0; c < t2; c++ {
					if wc := d.W[r][c]; wc != 0 {
						x.add(a, b, c, ua*vb*wc)
					}
				}
			}
		}
	}
	return x
}

// Verify checks that the decomposition expands to the matrix
// multiplication tensor.
func (d *Decomposition) Verify() error {
	if got, want := d.Evaluate(), MatMul(d.T); !got.Equal(want) {
		return fmt.Errorf("tensor: decomposition is not a ⟨%d,%d,%d⟩ decomposition", d.T, d.T, d.T)
	}
	return nil
}

// Rotate applies the cyclic symmetry of the matrix multiplication
// tensor in trace coordinates: (U, V, W) -> (V, W, U). The result is
// again a valid decomposition — hence a new, automatically-correct fast
// multiplication algorithm whose sparsity profile is the cyclic shift
// (s_A, s_B, s_C) -> (s_B, s_C, s_A).
func (d *Decomposition) Rotate() *Decomposition {
	return &Decomposition{T: d.T, R: d.R, U: d.V, V: d.W, W: d.U}
}

// Rank returns R.
func (d *Decomposition) Rank() int { return d.R }

// Rotations returns the two nontrivial rotations of alg as verified
// bilinear algorithms, named with ~rot1/~rot2 suffixes.
func Rotations(alg *bilinear.Algorithm) (*bilinear.Algorithm, *bilinear.Algorithm, error) {
	d := FromAlgorithm(alg)
	r1 := d.Rotate()
	r2 := r1.Rotate()
	a1 := r1.ToAlgorithm(alg.Name + "~rot1")
	a2 := r2.ToAlgorithm(alg.Name + "~rot2")
	if err := a1.Verify(); err != nil {
		return nil, nil, err
	}
	if err := a2.Verify(); err != nil {
		return nil, nil, err
	}
	return a1, a2, nil
}
