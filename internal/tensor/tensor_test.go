package tensor

import (
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/matrix"
)

// The matrix multiplication tensor has exactly T³ ones and is 0/1.
func TestMatMulTensorShape(t *testing.T) {
	for _, tt := range []int{2, 3} {
		x := MatMul(tt)
		ones := 0
		for _, v := range x.Data {
			switch v {
			case 0:
			case 1:
				ones++
			default:
				t.Fatalf("T=%d: entry %d not 0/1", tt, v)
			}
		}
		if ones != tt*tt*tt {
			t.Errorf("T=%d: %d ones, want %d", tt, ones, tt*tt*tt)
		}
	}
}

// Every registered algorithm is a rank decomposition of the tensor:
// FromAlgorithm(...).Verify() is equivalent to bilinear.Verify.
func TestAlgorithmsAreDecompositions(t *testing.T) {
	for name, alg := range bilinear.Registry() {
		if alg.T > 2 {
			continue // dense expansion of T=4 is 4096³; skip
		}
		d := FromAlgorithm(alg)
		if err := d.Verify(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if d.Rank() != alg.R {
			t.Errorf("%s: rank %d != r %d", name, d.Rank(), alg.R)
		}
	}
}

// A corrupted algorithm fails tensor verification.
func TestVerifyCatchesCorruption(t *testing.T) {
	alg := bilinear.Strassen()
	alg.A[0][1] = 9
	if err := FromAlgorithm(alg).Verify(); err == nil {
		t.Error("corrupted decomposition verified")
	}
}

// Round trip: FromAlgorithm then ToAlgorithm is the identity.
func TestRoundTrip(t *testing.T) {
	alg := bilinear.Strassen()
	back := FromAlgorithm(alg).ToAlgorithm("strassen")
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < alg.R; r++ {
		for i := range alg.A[r] {
			if alg.A[r][i] != back.A[r][i] || alg.B[r][i] != back.B[r][i] {
				t.Fatal("A/B forms changed in round trip")
			}
		}
	}
	for e := range alg.C {
		for r := range alg.C[e] {
			if alg.C[e][r] != back.C[e][r] {
				t.Fatal("C forms changed in round trip")
			}
		}
	}
}

// The cyclic rotations of Strassen are valid 7-multiplication
// algorithms, distinct from Strassen, with cyclically-shifted sparsity.
func TestRotationsValid(t *testing.T) {
	alg := bilinear.Strassen()
	r1, r2, err := Rotations(alg)
	if err != nil {
		t.Fatal(err)
	}
	p := alg.Params()
	p1 := r1.Params()
	p2 := r2.Params()
	// (s_A, s_B, s_C) rotates.
	if p1.SA != p.SB || p1.SB != p.SC || p1.SC != p.SA {
		t.Errorf("rot1 sparsity (%d,%d,%d), want (%d,%d,%d)",
			p1.SA, p1.SB, p1.SC, p.SB, p.SC, p.SA)
	}
	if p2.SA != p.SC || p2.SB != p.SA || p2.SC != p.SB {
		t.Errorf("rot2 sparsity (%d,%d,%d), want (%d,%d,%d)",
			p2.SA, p2.SB, p2.SC, p.SC, p.SA, p.SB)
	}
	// Triple rotation is the identity.
	d3 := FromAlgorithm(alg).Rotate().Rotate().Rotate()
	back := d3.ToAlgorithm("x")
	for r := 0; r < alg.R; r++ {
		for i := range alg.A[r] {
			if alg.A[r][i] != back.A[r][i] {
				t.Fatal("triple rotation is not the identity")
			}
		}
	}
}

// Rotated algorithms actually multiply matrices (executor end to end).
func TestRotatedAlgorithmsExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r1, r2, err := Rotations(bilinear.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []*bilinear.Algorithm{r1, r2} {
		e := bilinear.NewExecutor(alg, 1)
		for _, n := range []int{2, 4, 8} {
			a := matrix.Random(rng, n, n, -9, 9)
			b := matrix.Random(rng, n, n, -9, 9)
			got, err := e.Mul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(a.Mul(b)) {
				t.Fatalf("%s: wrong product at n=%d", alg.Name, n)
			}
		}
	}
}

// Winograd's rotations shuffle its asymmetric structure but keep s=14
// total... actually all three s values are 14 for Winograd; use a
// deliberately asymmetric check with naive (all 8s) to confirm rotation
// is at least stable there too.
func TestRotationsOtherAlgorithms(t *testing.T) {
	for _, alg := range []*bilinear.Algorithm{bilinear.Winograd(), bilinear.Naive()} {
		if _, _, err := Rotations(alg); err != nil {
			t.Errorf("%s: %v", alg.Name, err)
		}
	}
}
