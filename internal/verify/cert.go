package verify

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/bilinear"
	"repro/internal/bitio"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/tctree"
)

// Kind identifies which of the paper's constructions a circuit claims
// to be, and therefore which theorem's bounds apply.
type Kind string

const (
	// KindMatMul is the C = AB circuit of Theorems 4.8/4.9.
	KindMatMul Kind = "matmul"
	// KindTrace is the trace(A³) >= τ decision circuit of Theorems
	// 4.4/4.5.
	KindTrace Kind = "trace"
	// KindCount is the exact half-trace circuit (the library's
	// extension: depth 2t+3, one Lemma 3.2 bank past the decision
	// circuit).
	KindCount Kind = "count"
	// KindTriangle is the Θ(N³) depth-2 baseline of Section 1.
	KindTriangle Kind = "triangle"
)

// Params describe how a circuit was constructed, in enough detail to
// evaluate the paper's closed-form bounds against it.
type Params struct {
	Kind      Kind
	N         int
	EntryBits int
	Signed    bool
	Tau       int64 // trace and triangle kinds only

	// DepthParam is the theorem's d when the schedule was derived from
	// it (Options.Schedule == nil); 0 means an explicit schedule was
	// supplied and only realized (t-based) bounds apply.
	DepthParam int

	// Grouped marks GroupSize >= 2 constructions (Section 5 fan-in
	// limiting, Theorem 4.1): multi-stage adders deepen the circuit and
	// fall outside the single-stage cost model, so the depth and size
	// theorem checks are skipped; structural and magnitude checks still
	// apply.
	Grouped bool

	Alg      *bilinear.Algorithm // nil for KindTriangle
	Schedule tctree.Schedule     // nil for KindTriangle
}

// Check is one certified bound: a measured quantity against the
// closed-form value a theorem prescribes.
type Check struct {
	Name     string `json:"name"`
	Theorem  string `json:"theorem"`
	Measured int64  `json:"measured"`
	Bound    int64  `json:"bound"`
	// Exact marks equality checks (measured must equal the bound, not
	// merely stay below it).
	Exact bool `json:"exact,omitempty"`
	OK    bool `json:"ok"`
}

// Certificate is the machine-readable verification record for one
// built circuit: parameters, measured stats, every theorem-bound check,
// and the full structural report.
type Certificate struct {
	Kind       Kind          `json:"kind"`
	Algorithm  string        `json:"algorithm,omitempty"`
	N          int           `json:"n"`
	EntryBits  int           `json:"entry_bits,omitempty"`
	Signed     bool          `json:"signed,omitempty"`
	Tau        int64         `json:"tau,omitempty"`
	DepthParam int           `json:"depth_param,omitempty"`
	Grouped    bool          `json:"grouped,omitempty"`
	Schedule   []int         `json:"schedule,omitempty"`
	Stats      circuit.Stats `json:"stats"`

	Checks     []Check           `json:"checks"`
	Structural *StructuralReport `json:"structural"`
	OK         bool              `json:"ok"`
}

// JSON renders the certificate as indented JSON.
func (cert *Certificate) JSON() ([]byte, error) {
	return json.MarshalIndent(cert, "", "  ")
}

// Err returns nil when every check passed and a descriptive error
// otherwise.
func (cert *Certificate) Err() error {
	if cert.OK {
		return nil
	}
	for _, ck := range cert.Checks {
		if !ck.OK {
			return fmt.Errorf("verify: %s %s: check %q failed: measured %d vs bound %d (%s)",
				cert.Kind, cert.Algorithm, ck.Name, ck.Measured, ck.Bound, ck.Theorem)
		}
	}
	return cert.Structural.Err()
}

// MagnitudeBitBudget is the Lemma 4.2 bookkeeping: a sound budget, in
// bits, for every weight and threshold magnitude in the construction.
//
// Derivation. Bound (2) of the paper gives entry magnitudes below
// 2^{W(h)} at tree level h, W(h) = b + 2h·log2 T, so W(L) bounds every
// leaf scalar. Every gate the builders emit is either a Lemma 3.3
// product gate (weights 1, threshold <= 3) or part of a Lemma 3.1/3.2
// bank over some representation R, whose weights are bounded by R's
// maximum value and whose thresholds by twice that (the 2^l ceiling of
// ExtractBit). The largest representation in any construction is the
// output combine: at most r^L leaf terms, each a product of `factors`
// leaf scalars (2 for matmul, 3 for trace/count) concatenated over the
// 4 sign grids, scaled by coefficient-path products bounded by
// (maxCoef+1)^L. Hence
//
//	bits(maxRep) <= L·log2 r + factors·W(L) + L·log2(maxCoef+1) + 2
//
// and the budget adds headroom for the 2x threshold ceiling plus the
// user's τ. Everything is clamped to 63 — the builders' checked int64
// arithmetic guarantees that much, and a tampered 2^60-scale threshold
// still lands far beyond any honest construction's budget.
func (p Params) MagnitudeBitBudget() int {
	if p.Kind == KindTriangle {
		b := bitio.Bits(bitio.Binomial(p.N, 3)) + 2
		if tb := bitio.Bits(bitio.Abs(p.Tau)) + 1; tb > b {
			b = tb
		}
		return b
	}
	L := p.Schedule[len(p.Schedule)-1]
	wl := p.EntryBits + int(math.Ceil(2*float64(L)*math.Log2(float64(p.Alg.T))))
	leafBits := int(math.Ceil(float64(L) * math.Log2(float64(p.Alg.R))))
	coefBits := int(math.Ceil(float64(L) * math.Log2(float64(p.Alg.MaxWeight()+1))))
	factors := 2
	if p.Kind == KindTrace || p.Kind == KindCount {
		factors = 3
	}
	budget := leafBits + factors*wl + coefBits + 4
	if tb := bitio.Bits(bitio.Abs(p.Tau)) + 1; tb > budget {
		budget = tb
	}
	if budget > 63 {
		budget = 63
	}
	return budget
}

// expectedInputs returns the number of input wires the construction
// must have wired.
func (p Params) expectedInputs() int {
	per := p.EntryBits
	if p.Signed {
		per *= 2
	}
	switch p.Kind {
	case KindMatMul:
		return 2 * p.N * p.N * per
	case KindTrace, KindCount:
		return p.N * p.N * per
	case KindTriangle:
		return p.N * (p.N - 1) / 2
	}
	return -1
}

// validate rejects parameter sets the certifier cannot price.
func (p Params) validate() error {
	if p.N < 1 {
		return fmt.Errorf("verify: N=%d < 1", p.N)
	}
	if p.Kind == KindTriangle {
		return nil
	}
	if p.Alg == nil {
		return fmt.Errorf("verify: %s params require an algorithm", p.Kind)
	}
	if err := p.Alg.Validate(); err != nil {
		return err
	}
	if p.EntryBits < 1 {
		return fmt.Errorf("verify: EntryBits=%d < 1", p.EntryBits)
	}
	L := bitio.Log(p.Alg.T, p.N)
	if p.Schedule == nil {
		return fmt.Errorf("verify: %s params require the resolved schedule", p.Kind)
	}
	return p.Schedule.Validate(L)
}

// Certify runs the structural verifier with the Lemma 4.2 magnitude
// budget and then checks the circuit's measured depth, size and input
// count against the paper's closed-form bounds for the claimed
// construction. The returned certificate is always non-nil when err is
// nil; inspect cert.OK (or cert.Err()) for the verdict.
func Certify(c *circuit.Circuit, p Params) (*Certificate, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	cert := &Certificate{
		Kind:       p.Kind,
		N:          p.N,
		EntryBits:  p.EntryBits,
		Signed:     p.Signed,
		Tau:        p.Tau,
		DepthParam: p.DepthParam,
		Grouped:    p.Grouped,
		Stats:      c.Stats(),
	}
	if p.Alg != nil {
		cert.Algorithm = p.Alg.Name
	}
	if p.Schedule != nil {
		cert.Schedule = append([]int(nil), p.Schedule...)
	}

	budget := p.MagnitudeBitBudget()
	cert.Structural = Structural(c, StructuralOptions{
		MagnitudeBits:  budget,
		RequireOutputs: true,
	})

	add := func(name, theorem string, measured, bound int64, exact bool) {
		ok := measured <= bound
		if exact {
			ok = measured == bound
		}
		cert.Checks = append(cert.Checks, Check{
			Name: name, Theorem: theorem, Measured: measured, Bound: bound, Exact: exact, OK: ok,
		})
	}

	add("inputs", "construction input layout", int64(c.NumInputs()), int64(p.expectedInputs()), true)
	add("magnitude-bits", "Lemma 4.2 bound (2)",
		int64(max(cert.Structural.MaxWeightBits, cert.Structural.MaxThresholdBits)), int64(budget), false)

	switch p.Kind {
	case KindTriangle:
		add("size", "Section 1: exactly C(N,3)+1 gates", int64(c.Size()), bitio.Binomial(p.N, 3)+1, true)
		add("depth", "Section 1: depth 2", int64(c.Depth()), 2, true)

	default:
		t := p.Schedule.Transitions()
		L := p.Schedule[len(p.Schedule)-1]
		if p.DepthParam > 0 {
			add("transitions", "Lemma 4.3: schedule has at most d transitions", int64(t), int64(p.DepthParam), false)
		}
		if !p.Grouped {
			var realized int64
			var label string
			switch p.Kind {
			case KindMatMul:
				realized, label = int64(4*t+1), "Theorem 4.9: depth 4t+1"
				if p.DepthParam > 0 {
					add("depth-theorem", "Theorem 4.9: depth <= 4d+1", int64(c.Depth()), int64(4*p.DepthParam+1), false)
				}
			case KindTrace:
				realized, label = int64(2*t+2), "Theorem 4.5: depth 2t+2 (<= stated 2d+5)"
				if p.DepthParam > 0 {
					add("depth-theorem", "Theorem 4.5: depth <= 2d+5", int64(c.Depth()), int64(2*p.DepthParam+5), false)
				}
			case KindCount:
				realized, label = int64(2*t+3), "count extension: depth 2t+3"
			}
			add("depth-realized", label, int64(c.Depth()), realized, false)

			var est counting.Estimate
			switch p.Kind {
			case KindMatMul:
				est = counting.EstimateMatMul(p.Alg, p.EntryBits, L, p.Schedule)
			case KindTrace:
				est = counting.EstimateTrace(p.Alg, p.EntryBits, L, p.Schedule)
			case KindCount:
				est = counting.EstimateCount(p.Alg, p.EntryBits, L, p.Schedule)
			}
			bound := est.Total()
			if bound < float64(math.MaxInt64) {
				add("size-model", "Lemmas 4.2/4.6 cost model (sound upper bound)", int64(c.Size()), int64(math.Ceil(bound)), false)
			}
		}
	}

	cert.OK = cert.Structural.OK()
	for _, ck := range cert.Checks {
		cert.OK = cert.OK && ck.OK
	}
	return cert, nil
}

// paramsFromOptions fills the shared fields derived from core.Options.
func paramsFromOptions(p *Params, opts core.Options, sched tctree.Schedule) {
	p.EntryBits = opts.EntryBits
	p.Signed = opts.Signed
	p.Alg = opts.Alg
	p.Schedule = sched
	p.Grouped = opts.GroupSize >= 2
	if opts.Schedule == nil {
		p.DepthParam = opts.Depth
	}
}

// MatMulParams derives certification parameters from a built matmul
// circuit.
func MatMulParams(mc *core.MatMulCircuit) Params {
	p := Params{Kind: KindMatMul, N: mc.N}
	paramsFromOptions(&p, mc.Opts, mc.Schedule)
	return p
}

// TraceParams derives certification parameters from a built trace
// circuit.
func TraceParams(tc *core.TraceCircuit) Params {
	p := Params{Kind: KindTrace, N: tc.N, Tau: tc.Tau}
	paramsFromOptions(&p, tc.Opts, tc.Schedule)
	return p
}

// CountParams derives certification parameters from a built count
// circuit.
func CountParams(cc *core.CountCircuit) Params {
	p := Params{Kind: KindCount, N: cc.N}
	paramsFromOptions(&p, cc.Opts, cc.Schedule)
	return p
}

// TriangleParams derives certification parameters from the naive
// triangle baseline.
func TriangleParams(t *core.TriangleCircuit) Params {
	return Params{Kind: KindTriangle, N: t.N, Tau: t.Tau}
}

// CertifyMatMul certifies a built matmul circuit against Theorem 4.9.
func CertifyMatMul(mc *core.MatMulCircuit) (*Certificate, error) {
	return Certify(mc.Circuit, MatMulParams(mc))
}

// CertifyTrace certifies a built trace circuit against Theorems 4.4/4.5.
func CertifyTrace(tc *core.TraceCircuit) (*Certificate, error) {
	return Certify(tc.Circuit, TraceParams(tc))
}

// CertifyCount certifies a built exact-count circuit.
func CertifyCount(cc *core.CountCircuit) (*Certificate, error) {
	return Certify(cc.Circuit, CountParams(cc))
}

// CertifyTriangle certifies the naive baseline against its Section 1
// description.
func CertifyTriangle(t *core.TriangleCircuit) (*Certificate, error) {
	return Certify(t.Circuit, TriangleParams(t))
}

// CertifyBuilt certifies whichever typed circuit a Built carries — the
// entry point for re-certifying circuits reloaded from the on-disk
// store, where the wrapper was restored from metadata rather than
// constructed: the theorem bounds must hold for the deserialized gates
// exactly as they did for the original build.
func CertifyBuilt(b *core.Built) (*Certificate, error) {
	switch {
	case b.MatMul != nil:
		return CertifyMatMul(b.MatMul)
	case b.Trace != nil:
		return CertifyTrace(b.Trace)
	case b.Count != nil:
		return CertifyCount(b.Count)
	}
	return nil, fmt.Errorf("verify: empty Built")
}

// CertifyRectMatMul certifies the padded inner circuit of a rectangular
// product.
func CertifyRectMatMul(rc *core.RectMatMulCircuit) (*Certificate, error) {
	return CertifyMatMul(rc.Inner)
}
