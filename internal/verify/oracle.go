package verify

import (
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/matrix"
)

// RefMul computes A·B in math/big arithmetic — the exact reference
// every matmul circuit is compared against. Overflow is impossible by
// construction, so a disagreement always indicts the circuit side.
func RefMul(a, b *matrix.Matrix) [][]*big.Int {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("verify: shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := make([][]*big.Int, a.Rows)
	var t big.Int
	for i := range out {
		out[i] = make([]*big.Int, b.Cols)
		for j := range out[i] {
			s := new(big.Int)
			for k := 0; k < a.Cols; k++ {
				t.SetInt64(a.At(i, k))
				t.Mul(&t, big.NewInt(b.At(k, j)))
				s.Add(s, &t)
			}
			out[i][j] = s
		}
	}
	return out
}

// RefTraceCube computes trace(A³) in math/big arithmetic.
func RefTraceCube(a *matrix.Matrix) *big.Int {
	sq := RefMul(a, a)
	s := new(big.Int)
	var t big.Int
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			t.Mul(sq[i][j], big.NewInt(a.At(j, i)))
			s.Add(s, &t)
		}
	}
	return s
}

// InputFamily names one class of adversarial or random test inputs.
type InputFamily string

const (
	FamilyRandom       InputFamily = "random"
	FamilyAllOnes      InputFamily = "all-ones"
	FamilyAlternating  InputFamily = "alternating-sign"
	FamilyMaxMagnitude InputFamily = "max-magnitude"
)

// Families returns every input family, random first.
func Families() []InputFamily {
	return []InputFamily{FamilyRandom, FamilyAllOnes, FamilyAlternating, FamilyMaxMagnitude}
}

// FamilyMatrix generates the family's n x n instance within the
// circuit's input domain: [0, 2^entryBits) unsigned, (-2^entryBits,
// 2^entryBits) signed. The alternating family degrades gracefully when
// the domain has no negatives: it alternates max/zero instead.
func FamilyMatrix(f InputFamily, rng *rand.Rand, n, entryBits int, signed bool) *matrix.Matrix {
	maxVal := int64(1)<<uint(entryBits) - 1
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v int64
			switch f {
			case FamilyAllOnes:
				v = 1
			case FamilyAlternating:
				v = maxVal
				if (i+j)%2 == 1 {
					if signed {
						v = -maxVal
					} else {
						v = 0
					}
				}
			case FamilyMaxMagnitude:
				v = maxVal
				if signed && rng.Intn(2) == 1 {
					v = -maxVal
				}
			default: // FamilyRandom
				v = rng.Int63n(maxVal + 1)
				if signed && rng.Intn(2) == 1 {
					v = -v
				}
			}
			m.Set(i, j, v)
		}
	}
	return m
}

// SymmetricFamilyMatrix generates the family's instance restricted to
// the trace construction's domain: symmetric with zero diagonal (the
// equation (4) decomposition computes trace(A³)/2 only for such
// matrices).
func SymmetricFamilyMatrix(f InputFamily, rng *rand.Rand, n, entryBits int, signed bool) *matrix.Matrix {
	m := FamilyMatrix(f, rng, n, entryBits, signed)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
		for j := i + 1; j < n; j++ {
			m.Set(j, i, m.At(i, j))
		}
	}
	return m
}

// DifferentialEval cross-checks the four evaluation paths — Eval,
// EvalParallel, Evaluator.EvalBatch and Evaluator.EvalPlanes — on every
// given assignment, comparing full wire vectors bit for bit. Returns
// the first disagreement as an error.
func DifferentialEval(c *circuit.Circuit, inputs [][]bool) error {
	if len(inputs) == 0 {
		return nil
	}
	ev := circuit.NewEvaluator(c, 0)
	defer ev.Close()
	// EvalBatch copies results out; EvalPlanes borrows the arena, so it
	// must come second and be read before any further Eval* call.
	batch := ev.EvalBatch(inputs)
	planes := ev.EvalPlanes(circuit.PackBools(inputs))
	for s, in := range inputs {
		ref := c.Eval(in)
		par := c.EvalParallel(in, 4)
		for w := range ref {
			if par[w] != ref[w] {
				return fmt.Errorf("verify: sample %d wire %d: EvalParallel=%v, Eval=%v", s, w, par[w], ref[w])
			}
			if batch[s][w] != ref[w] {
				return fmt.Errorf("verify: sample %d wire %d: EvalBatch=%v, Eval=%v", s, w, batch[s][w], ref[w])
			}
			if got := planes.Get(circuit.Wire(w), s); got != ref[w] {
				return fmt.Errorf("verify: sample %d wire %d: EvalPlanes=%v, Eval=%v", s, w, got, ref[w])
			}
		}
	}
	return nil
}

// DifferentialMatMul runs the matmul circuit against the big.Int
// reference over every input family, then cross-checks the four
// evaluation paths on the collected assignments. rounds repeats the
// sweep with fresh random draws.
func DifferentialMatMul(mc *core.MatMulCircuit, rng *rand.Rand, rounds int) error {
	b, signed := mc.Opts.EntryBits, mc.Opts.Signed
	var assigns [][]bool
	for round := 0; round < rounds; round++ {
		for _, f := range Families() {
			am := FamilyMatrix(f, rng, mc.N, b, signed)
			bm := FamilyMatrix(f, rng, mc.N, b, signed)
			got, err := mc.Multiply(am, bm)
			if err != nil {
				return fmt.Errorf("verify: family %s: %w", f, err)
			}
			ref := RefMul(am, bm)
			for i := 0; i < mc.N; i++ {
				for j := 0; j < mc.N; j++ {
					if ref[i][j].Cmp(big.NewInt(got.At(i, j))) != 0 {
						return fmt.Errorf("verify: family %s: C[%d][%d] = %d, big.Int reference %s",
							f, i, j, got.At(i, j), ref[i][j])
					}
				}
			}
			in, err := mc.Assign(am, bm)
			if err != nil {
				return err
			}
			assigns = append(assigns, in)
		}
	}
	return DifferentialEval(mc.Circuit, assigns)
}

// DifferentialTrace runs the decision circuit against the big.Int
// trace reference over every (symmetrized) input family, plus boundary
// thresholds, then cross-checks the evaluation paths.
func DifferentialTrace(tc *core.TraceCircuit, rng *rand.Rand, rounds int) error {
	b, signed := tc.Opts.EntryBits, tc.Opts.Signed
	var assigns [][]bool
	for round := 0; round < rounds; round++ {
		for _, f := range Families() {
			a := SymmetricFamilyMatrix(f, rng, tc.N, b, signed)
			got, err := tc.Decide(a)
			if err != nil {
				return fmt.Errorf("verify: family %s: %w", f, err)
			}
			want := RefTraceCube(a).Cmp(big.NewInt(tc.Tau)) >= 0
			if got != want {
				return fmt.Errorf("verify: family %s: Decide=%v, big.Int trace(A³) >= %d is %v", f, got, tc.Tau, want)
			}
			in, err := tc.Assign(a)
			if err != nil {
				return err
			}
			assigns = append(assigns, in)
		}
	}
	return DifferentialEval(tc.Circuit, assigns)
}

// DifferentialCount runs the exact half-trace circuit against the
// big.Int reference over every (symmetrized) input family, then
// cross-checks the evaluation paths.
func DifferentialCount(cc *core.CountCircuit, rng *rand.Rand, rounds int) error {
	b, signed := cc.Opts.EntryBits, cc.Opts.Signed
	var assigns [][]bool
	for round := 0; round < rounds; round++ {
		for _, f := range Families() {
			a := SymmetricFamilyMatrix(f, rng, cc.N, b, signed)
			got, err := cc.HalfTrace(a)
			if err != nil {
				return fmt.Errorf("verify: family %s: %w", f, err)
			}
			want := new(big.Int).Rsh(RefTraceCube(a), 1)
			if want.Cmp(big.NewInt(got)) != 0 {
				return fmt.Errorf("verify: family %s: HalfTrace=%d, big.Int reference %s", f, got, want)
			}
			in, err := cc.Assign(a)
			if err != nil {
				return err
			}
			assigns = append(assigns, in)
		}
	}
	return DifferentialEval(cc.Circuit, assigns)
}

// MetamorphicMatMul checks algebraic identities the circuit must
// satisfy without reference to any multiplication oracle: A·I = A,
// I·A = A, (A·B)ᵀ = Bᵀ·Aᵀ, and distributivity A·(B+C) = A·B + A·C
// (with B, C drawn so B+C stays inside the input domain).
func MetamorphicMatMul(mc *core.MatMulCircuit, rng *rand.Rand, rounds int) error {
	b, signed := mc.Opts.EntryBits, mc.Opts.Signed
	id := matrix.Identity(mc.N)
	for round := 0; round < rounds; round++ {
		a := FamilyMatrix(FamilyRandom, rng, mc.N, b, signed)

		right, err := mc.Multiply(a, id)
		if err != nil {
			return err
		}
		if !right.Equal(a) {
			return fmt.Errorf("verify: metamorphic A·I != A")
		}
		left, err := mc.Multiply(id, a)
		if err != nil {
			return err
		}
		if !left.Equal(a) {
			return fmt.Errorf("verify: metamorphic I·A != A")
		}

		bm := FamilyMatrix(FamilyRandom, rng, mc.N, b, signed)
		ab, err := mc.Multiply(a, bm)
		if err != nil {
			return err
		}
		bTaT, err := mc.Multiply(bm.Transpose(), a.Transpose())
		if err != nil {
			return err
		}
		if !ab.Transpose().Equal(bTaT) {
			return fmt.Errorf("verify: metamorphic (A·B)ᵀ != Bᵀ·Aᵀ")
		}

		// Split a fresh in-domain matrix S entrywise into B + C; both
		// parts and the sum stay within the domain by construction.
		s := FamilyMatrix(FamilyRandom, rng, mc.N, b, signed)
		bp := matrix.New(mc.N, mc.N)
		cp := matrix.New(mc.N, mc.N)
		for i := 0; i < mc.N; i++ {
			for j := 0; j < mc.N; j++ {
				v := s.At(i, j)
				part := int64(0)
				if v != 0 {
					part = rng.Int63n(bitio.Abs(v) + 1)
					if v < 0 {
						part = -part
					}
				}
				bp.Set(i, j, part)
				cp.Set(i, j, v-part)
			}
		}
		abp, err := mc.Multiply(a, bp)
		if err != nil {
			return err
		}
		acp, err := mc.Multiply(a, cp)
		if err != nil {
			return err
		}
		as, err := mc.Multiply(a, s)
		if err != nil {
			return err
		}
		if !abp.Add(acp).Equal(as) {
			return fmt.Errorf("verify: metamorphic A·(B+C) != A·B + A·C")
		}
	}
	return nil
}

// MetamorphicTrace checks relabeling invariance of the decision: for
// any permutation P, trace((PAPᵀ)³) = trace(A³), so Decide must agree
// on A and its relabeled copy.
func MetamorphicTrace(tc *core.TraceCircuit, rng *rand.Rand, rounds int) error {
	b, signed := tc.Opts.EntryBits, tc.Opts.Signed
	for round := 0; round < rounds; round++ {
		a := SymmetricFamilyMatrix(FamilyRandom, rng, tc.N, b, signed)
		p := rng.Perm(tc.N)
		orig, err := tc.Decide(a)
		if err != nil {
			return err
		}
		rel, err := tc.Decide(Permuted(a, p))
		if err != nil {
			return err
		}
		if orig != rel {
			return fmt.Errorf("verify: metamorphic trace decision changed under relabeling %v", p)
		}
	}
	return nil
}

// MetamorphicCount checks relabeling invariance of the exact value:
// trace((PAPᵀ)³)/2 = trace(A³)/2 for any permutation P.
func MetamorphicCount(cc *core.CountCircuit, rng *rand.Rand, rounds int) error {
	b, signed := cc.Opts.EntryBits, cc.Opts.Signed
	for round := 0; round < rounds; round++ {
		a := SymmetricFamilyMatrix(FamilyRandom, rng, cc.N, b, signed)
		p := rng.Perm(cc.N)
		orig, err := cc.HalfTrace(a)
		if err != nil {
			return err
		}
		rel, err := cc.HalfTrace(Permuted(a, p))
		if err != nil {
			return err
		}
		if orig != rel {
			return fmt.Errorf("verify: metamorphic half-trace %d changed to %d under relabeling %v", orig, rel, p)
		}
	}
	return nil
}

// Permuted returns P·A·Pᵀ, i.e. A with rows and columns relabeled by
// perm (entry (i,j) moves to (perm[i], perm[j])).
func Permuted(a *matrix.Matrix, perm []int) *matrix.Matrix {
	out := matrix.New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(perm[i], perm[j], a.At(i, j))
		}
	}
	return out
}
