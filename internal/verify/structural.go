// Package verify is the certification layer of the library: machine
// checks that every circuit we build actually has the structure, depth,
// size and magnitudes the paper's lemmas promise, and computes the same
// values as an exact big-integer reference.
//
// The paper is pure theory — it has no evaluation section — so the
// reproduction's credibility rests entirely on checkable claims. This
// package turns those claims into three kinds of always-on tooling:
//
//   - Structural (this file): walks any circuit.Circuit and re-derives
//     its levelization, acyclicity, fan-in, edge and depth figures from
//     the wire lists, comparing them against the declared measures, and
//     checks every weight and threshold against a magnitude budget.
//
//   - Certify (cert.go): given the construction parameters (N, bit
//     width, depth parameter d, the algorithm's α/β/γ constants), it
//     evaluates the paper's closed-form depth/size bounds (Theorems
//     4.4/4.5/4.8/4.9, Lemma 4.2) and asserts the built circuit is
//     within them, emitting a machine-readable JSON certificate.
//
//   - Differential/metamorphic oracles (oracle.go): cross-check the
//     four evaluation paths (Eval, EvalParallel, EvalBatch, EvalPlanes)
//     against each other and against math/big reference arithmetic on
//     random, adversarial and metamorphic input families.
package verify

import (
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/circuit"
)

// Violation is one failed structural or certification check.
type Violation struct {
	Check  string `json:"check"`
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// maxRecorded caps how many violations of one kind are spelled out;
// beyond it only the count grows (a corrupted million-gate circuit
// should not produce a million strings).
const maxRecorded = 16

// StructuralReport is the result of walking one circuit.
type StructuralReport struct {
	Stats circuit.Stats `json:"stats"`

	// Recomputed figures (from the wire lists, independent of the
	// declared accessors).
	RecomputedDepth    int   `json:"recomputed_depth"`
	RecomputedEdges    int64 `json:"recomputed_edges"`
	RecomputedMaxFanIn int   `json:"recomputed_max_fan_in"`

	// Magnitude extremes over all gates.
	MaxWeightBits    int `json:"max_weight_bits"`
	MaxThresholdBits int `json:"max_threshold_bits"`

	// Unreachable counts gates with no forward path to a marked output.
	// The core constructions are expected to be dead-free; transformed
	// or hand-assembled circuits may carry scaffolding, so this is a
	// warning unless StructuralOptions.RequireReachable is set.
	Unreachable int `json:"unreachable"`

	// ConstantGates counts gates with fan-in > 0 whose threshold lies
	// outside the attainable sum range (the gate's value is input-
	// independent). Lemma 3.1 legitimately creates a few — its top
	// comparison threshold 2^l can exceed the attainable maximum — so
	// this is informational, never a violation.
	ConstantGates int `json:"constant_gates"`

	Violations []Violation `json:"violations,omitempty"`
	Warnings   []Violation `json:"warnings,omitempty"`

	// ViolationCount counts all violations, including ones elided from
	// the Violations list by the recording cap.
	ViolationCount int `json:"violation_count"`
}

// OK reports whether no violations were found.
func (r *StructuralReport) OK() bool { return r.ViolationCount == 0 }

// Err returns nil when the report is clean and a descriptive error
// otherwise.
func (r *StructuralReport) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("verify: %d structural violation(s), first: %s", r.ViolationCount, r.Violations[0])
}

func (r *StructuralReport) violate(check, format string, args ...any) {
	if len(r.Violations) < maxRecorded {
		r.Violations = append(r.Violations, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
	}
	r.ViolationCount++
}

func (r *StructuralReport) warn(check, format string, args ...any) {
	if len(r.Warnings) < maxRecorded {
		r.Warnings = append(r.Warnings, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
	}
}

// StructuralOptions tune the structural verifier.
type StructuralOptions struct {
	// MagnitudeBits, when > 0, is the budget on bits(|weight|) and
	// bits(|threshold|) for every gate — the Lemma 4.2 bookkeeping.
	// Certify derives it from the construction parameters; a tampered
	// threshold beyond the budget is a violation.
	MagnitudeBits int
	// RequireOutputs makes a circuit with no marked outputs a violation.
	RequireOutputs bool
	// RequireReachable promotes unreachable gates from warning to
	// violation.
	RequireReachable bool
}

// Structural walks the circuit and checks every levelization invariant:
// inputs of each gate come from strictly lower levels and from wires
// created before the gate (acyclicity), declared Depth/Size/Edges/
// MaxFanIn match recomputation from the wire lists, outputs exist,
// per-gate weighted sums cannot overflow int64, and weight/threshold
// magnitudes stay within the given budget.
func Structural(c *circuit.Circuit, opt StructuralOptions) *StructuralReport {
	r := &StructuralReport{Stats: c.Stats()}
	n := c.NumInputs()
	size := c.Size()

	level := make([]int, size)
	spans := make([][]circuit.Wire, size) // borrowed, for the reachability pass
	maxLevel := 0
	var edges int64
	maxFan := 0
	var maxW, maxT int64

	c.VisitGates(func(g int, ins []circuit.Wire, ws []int64, th int64, declLevel int) {
		spans[g] = ins
		if len(ins) > maxFan {
			maxFan = len(ins)
		}
		edges += int64(len(ins))

		lvl := 0
		var sumPos, sumNeg uint64 // attainable sum range, overflow-safe
		for i, src := range ins {
			switch {
			case src < 0 || int(src) >= n+size:
				r.violate("dangling-wire", "gate %d reads nonexistent wire %d (have %d)", g, src, n+size)
				continue
			case int(src) >= n+g:
				r.violate("acyclicity", "gate %d reads wire %d created at or after it", g, src)
				continue
			}
			srcLvl := 0
			if int(src) >= n {
				srcLvl = level[int(src)-n]
			}
			if srcLvl >= declLevel {
				r.violate("levelization", "gate %d at level %d reads wire %d from level %d", g, declLevel, src, srcLvl)
			}
			if srcLvl > lvl {
				lvl = srcLvl
			}
			w := ws[i]
			a := absU64(w)
			if w > 0 {
				sumPos += a
			} else {
				sumNeg += a
			}
			if aw := int64Abs(w); aw > maxW {
				maxW = aw
			}
		}
		lvl++
		level[g] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
		if lvl != declLevel {
			r.violate("level-mismatch", "gate %d declares level %d, recomputed %d", g, declLevel, lvl)
		}
		if lvl != c.GateLevel(g) {
			r.violate("level-accessor", "gate %d: GateLevel=%d, recomputed %d", g, c.GateLevel(g), lvl)
		}
		if sumPos > math.MaxInt64 || sumNeg > math.MaxInt64 {
			r.violate("sum-overflow", "gate %d: attainable weighted sum overflows int64", g)
		}
		if at := int64Abs(th); at > maxT {
			maxT = at
		}
		if len(ins) > 0 && sumPos <= math.MaxInt64 && sumNeg <= math.MaxInt64 {
			// The attainable sum ranges over [-sumNeg, sumPos]; a
			// threshold outside (-sumNeg, sumPos] makes the gate's value
			// input-independent (never fires, or always fires).
			if th > int64(sumPos) || th <= -int64(sumNeg) {
				r.ConstantGates++
			}
		}
	})

	r.RecomputedDepth = maxLevel
	r.RecomputedEdges = edges
	r.RecomputedMaxFanIn = maxFan
	r.MaxWeightBits = bitio.Bits(maxW)
	r.MaxThresholdBits = bitio.Bits(maxT)

	if c.Depth() != maxLevel {
		r.violate("depth", "declared Depth()=%d, recomputed %d", c.Depth(), maxLevel)
	}
	if got := c.Edges(); got != edges {
		r.violate("edges", "declared Edges()=%d, recomputed %d", got, edges)
	}
	if se := c.StoredEdges(); se > edges {
		r.violate("stored-edges", "StoredEdges()=%d exceeds semantic edges %d", se, edges)
	}
	if got := c.MaxFanIn(); got != maxFan {
		r.violate("max-fan-in", "declared MaxFanIn()=%d, recomputed %d", got, maxFan)
	}
	if ls := c.LevelSizes(); len(ls) != maxLevel {
		r.violate("level-sizes", "LevelSizes() has %d levels, recomputed depth %d", len(ls), maxLevel)
	} else {
		perLevel := make([]int, maxLevel)
		for _, lvl := range level {
			perLevel[lvl-1]++
		}
		for i := range ls {
			if ls[i] != perLevel[i] {
				r.violate("level-sizes", "level %d: LevelSizes()=%d, recomputed %d", i+1, ls[i], perLevel[i])
				break
			}
		}
	}

	outs := c.Outputs()
	if opt.RequireOutputs && len(outs) == 0 {
		r.violate("outputs", "circuit marks no outputs")
	}
	reach := make([]bool, size)
	for _, w := range outs {
		if w < 0 || int(w) >= n+size {
			r.violate("output-range", "output wire %d outside [0,%d)", w, n+size)
			continue
		}
		if int(w) >= n {
			reach[int(w)-n] = true
		}
	}
	// Gates only reference earlier wires, so one descending sweep
	// propagates reachability backwards through the whole DAG.
	for g := size - 1; g >= 0; g-- {
		if !reach[g] {
			continue
		}
		for _, src := range spans[g] {
			if int(src) >= n && int(src) < n+size {
				reach[int(src)-n] = true
			}
		}
	}
	for g := 0; g < size; g++ {
		if !reach[g] {
			r.Unreachable++
		}
	}
	if r.Unreachable > 0 {
		if opt.RequireReachable {
			r.violate("unreachable", "%d gate(s) have no path to an output", r.Unreachable)
		} else {
			r.warn("unreachable", "%d gate(s) have no path to an output", r.Unreachable)
		}
	}

	if opt.MagnitudeBits > 0 {
		if r.MaxWeightBits > opt.MagnitudeBits {
			r.violate("weight-magnitude", "max weight needs %d bits, Lemma 4.2 budget is %d", r.MaxWeightBits, opt.MagnitudeBits)
		}
		if r.MaxThresholdBits > opt.MagnitudeBits {
			r.violate("threshold-magnitude", "max threshold needs %d bits, Lemma 4.2 budget is %d", r.MaxThresholdBits, opt.MagnitudeBits)
		}
	}
	return r
}

// absU64 returns |v| as uint64, correct for math.MinInt64.
func absU64(v int64) uint64 {
	if v < 0 {
		return uint64(-(v + 1)) + 1
	}
	return uint64(v)
}

// int64Abs saturates |math.MinInt64| to MaxInt64 (only magnitude bits
// matter to callers, and 64 > any budget either way).
func int64Abs(v int64) int64 {
	if v == math.MinInt64 {
		return math.MaxInt64
	}
	return bitio.Abs(v)
}
