package verify

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/bilinear"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/tctree"
)

// matmulVariants spans the constructor's option space: default unsigned
// Strassen, signed multi-bit, explicit schedule, and Winograd.
func matmulVariants(t *testing.T, n int) map[string]*core.MatMulCircuit {
	t.Helper()
	build := func(opts core.Options) *core.MatMulCircuit {
		mc, err := core.BuildMatMul(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		return mc
	}
	return map[string]*core.MatMulCircuit{
		"default":  build(core.Options{Alg: bilinear.Strassen()}),
		"signed":   build(core.Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true}),
		"direct":   build(core.Options{Alg: bilinear.Strassen(), Schedule: tctree.Direct(2)}),
		"winograd": build(core.Options{Alg: bilinear.Winograd(), EntryBits: 2}),
	}
}

// Every matmul variant certifies clean against Theorem 4.9 and the
// Lemma 4.2 magnitude budget.
func TestCertifyMatMul(t *testing.T) {
	for name, mc := range matmulVariants(t, 4) {
		cert, err := CertifyMatMul(mc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cert.Err(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if cert.Structural.ViolationCount != 0 {
			t.Errorf("%s: structural violations: %v", name, cert.Structural.Violations)
		}
	}
}

// The trace decision, exact count, naive baseline and rectangular
// constructors all certify clean.
func TestCertifyOtherConstructors(t *testing.T) {
	tc, err := core.BuildTrace(4, 6, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := core.BuildCount(4, core.Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	tri, err := core.BuildNaiveTriangle(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := core.BuildRectMatMul(3, 4, 2, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (*Certificate, error){
		"trace":    func() (*Certificate, error) { return CertifyTrace(tc) },
		"count":    func() (*Certificate, error) { return CertifyCount(cc) },
		"triangle": func() (*Certificate, error) { return CertifyTriangle(tri) },
		"rect":     func() (*Certificate, error) { return CertifyRectMatMul(rc) },
	} {
		cert, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cert.Err(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Grouped (Theorem 4.1, fan-in limited) constructions skip the flat
// depth/size bounds but still pass the structural and magnitude checks.
func TestCertifyGrouped(t *testing.T) {
	tc, err := core.BuildTheorem41Trace(4, 4, bilinear.Strassen(), 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifyTrace(tc)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Grouped {
		t.Fatal("Theorem 4.1 build not flagged as grouped")
	}
	for _, ck := range cert.Checks {
		if ck.Name == "depth-realized" || ck.Name == "size-model" {
			t.Errorf("grouped certificate carries flat-construction check %q", ck.Name)
		}
	}
	if err := cert.Err(); err != nil {
		t.Error(err)
	}
}

// A deliberately corrupted circuit — one threshold tampered beyond the
// Lemma 4.2 budget — must be rejected, and the pristine circuit must
// still certify afterwards (fault injection is non-destructive).
func TestCertifyRejectsTamperedThreshold(t *testing.T) {
	mc, err := core.BuildMatMul(4, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	p := MatMulParams(mc)
	bad := mc.Circuit.WithThreshold(mc.Circuit.Size()/2, 1<<60)
	cert, err := Certify(bad, p)
	if err != nil {
		t.Fatal(err)
	}
	if cert.OK {
		t.Fatal("certificate accepted a tampered threshold")
	}
	found := false
	for _, v := range cert.Structural.Violations {
		if v.Check == "threshold-magnitude" {
			found = true
		}
	}
	if !found {
		t.Errorf("tampering not attributed to threshold-magnitude; violations: %v", cert.Structural.Violations)
	}
	if clean, err := Certify(mc.Circuit, p); err != nil || !clean.OK {
		t.Fatalf("pristine circuit no longer certifies: %v %v", err, clean.Err())
	}
}

// The structural verifier's recomputation must match a hand-built
// circuit's declared figures exactly, and flag synthetic damage.
func TestCertifyStructuralRecomputation(t *testing.T) {
	b := circuit.NewBuilder(3)
	pair := b.GateGroup([]circuit.Wire{0, 1}, []int64{1, 1}, []int64{1, 2})
	out := b.Gate([]circuit.Wire{pair[0], pair[1], 2}, []int64{1, -1, 1}, 1)
	b.MarkOutput(out)
	c := b.Build()

	r := Structural(c, StructuralOptions{RequireOutputs: true, RequireReachable: true})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.RecomputedDepth != c.Depth() || r.RecomputedEdges != c.Edges() || r.RecomputedMaxFanIn != c.MaxFanIn() {
		t.Errorf("recomputed depth/edges/fanin %d/%d/%d, declared %d/%d/%d",
			r.RecomputedDepth, r.RecomputedEdges, r.RecomputedMaxFanIn, c.Depth(), c.Edges(), c.MaxFanIn())
	}
	if r.MaxWeightBits != 1 || r.MaxThresholdBits != 2 {
		t.Errorf("magnitude bits weight=%d threshold=%d, want 1/2", r.MaxWeightBits, r.MaxThresholdBits)
	}

	// Magnitude budget of 1 bit: the group's threshold 2 must violate.
	if tight := Structural(c, StructuralOptions{MagnitudeBits: 1}); tight.OK() {
		t.Error("1-bit budget accepted a 2-bit threshold")
	}

	// A gate nobody reads is unreachable: warning by default, violation
	// under RequireReachable.
	b2 := circuit.NewBuilder(2)
	b2.Gate([]circuit.Wire{0}, []int64{1}, 1) // dead
	b2.MarkOutput(b2.Gate([]circuit.Wire{1}, []int64{1}, 1))
	dead := b2.Build()
	if r := Structural(dead, StructuralOptions{}); !r.OK() || r.Unreachable != 1 {
		t.Errorf("dead gate: OK=%v unreachable=%d, want warning with 1", r.OK(), r.Unreachable)
	}
	if r := Structural(dead, StructuralOptions{RequireReachable: true}); r.OK() {
		t.Error("RequireReachable accepted a dead gate")
	}
}

// Certificates serialize to JSON and round-trip their checks.
func TestCertifyJSONRoundTrip(t *testing.T) {
	tri, err := core.BuildNaiveTriangle(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifyTriangle(tri)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cert.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Certificate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != KindTriangle || !back.OK || len(back.Checks) != len(cert.Checks) {
		t.Errorf("round trip lost data: %+v", back)
	}
}

// Differential oracle: matmul against big.Int over all four input
// families, plus four-way evaluation-path agreement.
func TestCertifyDifferentialMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, mc := range matmulVariants(t, 4) {
		if err := DifferentialMatMul(mc, rng, 2); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Differential oracle: trace decision and exact count against big.Int.
func TestCertifyDifferentialTraceAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tau := range []int64{0, 5, 40} {
		tc, err := core.BuildTrace(4, tau, core.Options{Alg: bilinear.Strassen()})
		if err != nil {
			t.Fatal(err)
		}
		if err := DifferentialTrace(tc, rng, 2); err != nil {
			t.Errorf("tau=%d: %v", tau, err)
		}
	}
	cc, err := core.BuildCount(4, core.Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := DifferentialCount(cc, rng, 2); err != nil {
		t.Error(err)
	}
}

// Metamorphic oracle: identity, transpose and linearity relations for
// matmul; relabeling invariance for trace and count.
func TestCertifyMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mc, err := core.BuildMatMul(4, core.Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := MetamorphicMatMul(mc, rng, 3); err != nil {
		t.Error(err)
	}
	tc, err := core.BuildTrace(4, 3, core.Options{Alg: bilinear.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	if err := MetamorphicTrace(tc, rng, 3); err != nil {
		t.Error(err)
	}
	cc, err := core.BuildCount(4, core.Options{Alg: bilinear.Strassen(), EntryBits: 2, Signed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := MetamorphicCount(cc, rng, 3); err != nil {
		t.Error(err)
	}
}

// The magnitude budget must be monotone in the construction parameters
// and reject nonsense parameter sets.
func TestCertifyParamsValidation(t *testing.T) {
	if _, err := Certify(nil, Params{Kind: KindMatMul, N: 4}); err == nil {
		t.Error("params without algorithm accepted")
	}
	if _, err := Certify(nil, Params{Kind: KindTriangle, N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	small := Params{Kind: KindMatMul, N: 4, EntryBits: 1, Alg: bilinear.Strassen(), Schedule: tctree.Schedule{0, 2}}
	big := small
	big.EntryBits = 8
	if small.MagnitudeBitBudget() >= big.MagnitudeBitBudget() {
		t.Errorf("budget not monotone in entry bits: %d vs %d", small.MagnitudeBitBudget(), big.MagnitudeBitBudget())
	}
}
