#!/bin/sh
# CI load-generator smoke: start tcserve, drive it with tcload's -smoke
# regression gate (3s closed-loop burst over the binary frame protocol),
# and fail on an rps regression against the committed BENCH_serve.json
# e27 baseline. tcload itself skips (exit 0) when GOMAXPROCS < 2 — the
# sharded-dispatch comparison needs real parallelism — so this script is
# safe on single-core machines too.
#
# Usage: scripts/loadgen_smoke.sh [min-rps-frac]
# Runs from the repo root (where BENCH_serve.json lives).
#
# TCSERVE_PORT overrides the listen port (default 18719), so parallel
# CI jobs or a developer with something bound there can move it. The
# health probe is `tcload -probe` — the binary is built here anyway, so
# the script needs no curl/wget on minimal runners.
set -eu

MIN_FRAC="${1:-0.5}"
PORT="${TCSERVE_PORT:-18719}"
ADDR="127.0.0.1:$PORT"
BIN_DIR="$(mktemp -d)"
SERVE_PID=""

cleanup() {
    if [ -n "$SERVE_PID" ]; then
        kill "$SERVE_PID" 2>/dev/null || true
        # Reap the process before returning: without this, back-to-back
        # runs can race a still-bound port while the old tcserve drains.
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN_DIR"
}
trap cleanup EXIT INT TERM

go build -o "$BIN_DIR/tcserve" ./cmd/tcserve
go build -o "$BIN_DIR/tcload" ./cmd/tcload

"$BIN_DIR/tcserve" -addr "$ADDR" &
SERVE_PID=$!

# Wait for the server to come up (it builds nothing at startup, so this
# is quick; 10s is a generous bound for a loaded runner).
i=0
until "$BIN_DIR/tcload" -probe -url "http://$ADDR"; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "loadgen_smoke: tcserve did not become healthy" >&2
        exit 1
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "loadgen_smoke: tcserve exited during startup" >&2
        exit 1
    fi
    sleep 0.1
done

"$BIN_DIR/tcload" -smoke -url "http://$ADDR" -min-rps-frac "$MIN_FRAC"
