#!/bin/sh
# CI load-generator smoke: start tcserve, drive it with tcload's -smoke
# regression gate (3s closed-loop burst over the binary frame protocol),
# and fail on an rps regression against the committed BENCH_serve.json
# e27 baseline. tcload itself skips (exit 0) when GOMAXPROCS < 2 — the
# sharded-dispatch comparison needs real parallelism — so this script is
# safe on single-core machines too. A second, shorter burst then drives
# the streaming /v1/graph endpoint (per-tenant edge updates, each
# screened response checked against the generator's shadow recount);
# that phase is a correctness gate, not a throughput gate, so it runs
# on any core count.
#
# Usage: scripts/loadgen_smoke.sh [min-rps-frac]
# Runs from the repo root (where BENCH_serve.json lives).
#
# Port/env handling is shared with every other server script via
# scripts/serve_env.sh: set TCSERVE_PORT to move the port (default
# 18719), and the same variable steers tcserve's and tcload's own
# defaults. The health probe is `tcload -probe` — the binary is built
# here anyway, so the script needs no curl/wget on minimal runners.
set -eu

. "$(dirname "$0")/serve_env.sh"

MIN_FRAC="${1:-0.5}"
BIN_DIR="$(mktemp -d)"
SERVE_PID=""

cleanup() {
    if [ -n "$SERVE_PID" ]; then
        kill "$SERVE_PID" 2>/dev/null || true
        # Reap the process before returning: without this, back-to-back
        # runs can race a still-bound port while the old tcserve drains.
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN_DIR"
}
trap cleanup EXIT INT TERM

go build -o "$BIN_DIR/tcserve" ./cmd/tcserve
go build -o "$BIN_DIR/tcload" ./cmd/tcload

"$BIN_DIR/tcserve" -addr "$TCSERVE_ADDR" &
SERVE_PID=$!

# Wait for the server to come up (it builds nothing at startup, so this
# is quick; 10s is a generous bound for a loaded runner).
i=0
until "$BIN_DIR/tcload" -probe -url "$TCSERVE_URL"; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "loadgen_smoke: tcserve did not become healthy" >&2
        exit 1
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "loadgen_smoke: tcserve exited during startup" >&2
        exit 1
    fi
    sleep 0.1
done

"$BIN_DIR/tcload" -smoke -url "$TCSERVE_URL" -min-rps-frac "$MIN_FRAC"

# Streaming endpoint: a short verified burst of per-tenant edge-update
# frames. Exit 1 from tcload here means a screened triangle count
# disagreed with the shadow recount (or a request failed outright).
"$BIN_DIR/tcload" -graph -graph-tenants 8 -workers 8 -requests 500 -url "$TCSERVE_URL"
