#!/bin/sh
# CI load-generator smoke: start tcserve, drive it with tcload's -smoke
# regression gate (3s closed-loop burst over the binary frame protocol),
# and fail on an rps regression against the committed BENCH_serve.json
# e27 baseline. tcload itself skips (exit 0) when GOMAXPROCS < 2 — the
# sharded-dispatch comparison needs real parallelism — so this script is
# safe on single-core machines too.
#
# Usage: scripts/loadgen_smoke.sh [min-rps-frac]
# Runs from the repo root (where BENCH_serve.json lives).
set -eu

MIN_FRAC="${1:-0.5}"
ADDR="127.0.0.1:18719"
BIN_DIR="$(mktemp -d)"
SERVE_PID=""

cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$BIN_DIR"
}
trap cleanup EXIT INT TERM

go build -o "$BIN_DIR/tcserve" ./cmd/tcserve
go build -o "$BIN_DIR/tcload" ./cmd/tcload

"$BIN_DIR/tcserve" -addr "$ADDR" &
SERVE_PID=$!

# Wait for the server to come up (it builds nothing at startup, so this
# is quick; 10s is a generous bound for a loaded runner).
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "loadgen_smoke: tcserve did not become healthy" >&2
        exit 1
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "loadgen_smoke: tcserve exited during startup" >&2
        exit 1
    fi
    sleep 0.1
done

"$BIN_DIR/tcload" -smoke -url "http://$ADDR" -min-rps-frac "$MIN_FRAC"
