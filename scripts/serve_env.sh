# Shared tcserve port/env handling, sourced (`. scripts/serve_env.sh`)
# by any script that starts a server. One variable controls the port
# everywhere: TCSERVE_PORT is also the override read by tcserve's
# default -addr and tcload's default -url, so scripts, binaries and CI
# jobs can never disagree about where the server lives.
#
# Exports/sets:
#   TCSERVE_PORT  the port (default 18719 — scripts deliberately avoid
#                 tcserve's interactive default 8714 so a smoke run
#                 never collides with a developer's live server)
#   TCSERVE_ADDR  127.0.0.1:$TCSERVE_PORT (for tcserve -addr)
#   TCSERVE_URL   http://$TCSERVE_ADDR    (for tcload -url)
TCSERVE_PORT="${TCSERVE_PORT:-18719}"
TCSERVE_ADDR="127.0.0.1:$TCSERVE_PORT"
TCSERVE_URL="http://$TCSERVE_ADDR"
export TCSERVE_PORT
