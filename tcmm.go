// Package tcmm is the public API of this library: constant-depth,
// subcubic-size threshold circuits for matrix multiplication and
// triangle counting, reproducing Parekh, Phillips, James and Aimone,
// "Constant-Depth and Subcubic-Size Threshold Circuits for Matrix
// Multiplication" (SPAA 2018).
//
// # Overview
//
// A threshold circuit is a DAG of McCulloch-Pitts gates: each gate has
// unbounded fan-in, integer weights and an integer threshold, and fires
// iff the weighted sum of its inputs meets the threshold. The paper
// shows how to compile any bilinear fast matrix multiplication
// algorithm (Strassen's and friends) into such circuits:
//
//   - NewMatMul builds a circuit computing C = AB for N x N integer
//     matrices in depth 4d+1 with Õ(d·N^{ω+c·γ^d}) gates
//     (Theorem 4.9), or depth O(log log N) with Õ(N^ω) gates under the
//     LogLogSchedule (Theorem 4.8).
//   - NewTrace builds a circuit deciding trace(A³) >= τ in depth 2d+2
//     (Theorems 4.4/4.5) — for a graph adjacency matrix this answers
//     "does G have at least τ/6 triangles?".
//   - NewNaiveTriangle builds the Θ(N³)-gate depth-2 baseline the paper
//     opens with.
//
// The exponent constants are derived from the algorithm's *sparsity*
// (Definition 2.1): Strassen's algorithm has s = 12, γ ≈ 0.491,
// c ≈ 1.585, so d > 3 already beats the N³ barrier.
//
// # Architecture
//
// The facade re-exports the implementation packages:
//
//	internal/circuit   threshold-gate DAG, evaluation, complexity measures
//	internal/arith     Lemmas 3.1–3.3: TC0 addition and multiplication
//	internal/bilinear  fast matrix multiplication algorithms + sparsity
//	internal/tctree    the recursion trees T_A/T_B/T_G and level schedules
//	internal/core      the paper's circuit constructions
//	internal/counting  closed-form gate-count model for paper-scale N
//	internal/graph     triangle counting / social-network substrate (§5)
//	internal/conv      convolution-as-GEMM deep-learning substrate (§5)
//	internal/neuro     neuromorphic device simulator (fan-in, energy, §6)
package tcmm

import (
	"math/rand"

	"repro/internal/bilinear"
	"repro/internal/circuit"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/neuro"
	"repro/internal/tctree"
	"repro/internal/verify"
)

// Matrix is a dense integer matrix (row-major int64 entries).
type Matrix = matrix.Matrix

// NewMatrix returns a zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix { return matrix.New(rows, cols) }

// MatrixFromRows builds a matrix from equal-length rows.
func MatrixFromRows(rows [][]int64) *Matrix { return matrix.FromRows(rows) }

// RandomMatrix draws entries uniformly from [lo, hi].
func RandomMatrix(rng *rand.Rand, rows, cols int, lo, hi int64) *Matrix {
	return matrix.Random(rng, rows, cols, lo, hi)
}

// RandomBinaryMatrix draws 0/1 entries with the given one-probability.
func RandomBinaryMatrix(rng *rand.Rand, rows, cols int, p float64) *Matrix {
	return matrix.RandomBinary(rng, rows, cols, p)
}

// Algorithm is a bilinear fast matrix multiplication algorithm
// ⟨T, r, M-expressions, C-expressions⟩.
type Algorithm = bilinear.Algorithm

// AlgorithmParams carries Definition 2.1's sparsity measures and the
// derived constants ω, α, β, γ, c of Section 4.3.
type AlgorithmParams = bilinear.Params

// Strassen returns Strassen's algorithm (Figure 1): T=2, r=7, s=12.
func Strassen() *Algorithm { return bilinear.Strassen() }

// Winograd returns Winograd's 7-multiplication variant: fewer additions
// as a conventional algorithm, but denser (s=14), hence a worse circuit
// exponent — sparsity, not addition count, is what the circuits price.
func Winograd() *Algorithm { return bilinear.Winograd() }

// NaiveAlgorithm returns the definitional T=2, r=8 algorithm (ω = 3).
func NaiveAlgorithm() *Algorithm { return bilinear.Naive() }

// ComposeAlgorithms returns the tensor product of two algorithms
// (Strassen⊗Strassen gives T=4, r=49).
func ComposeAlgorithms(a, b *Algorithm) *Algorithm { return bilinear.Compose(a, b) }

// Algorithms returns the built-in verified algorithms by name:
// "strassen", "winograd", "naive2", "strassen2".
func Algorithms() map[string]*Algorithm { return bilinear.Registry() }

// LookupAlgorithm resolves a built-in algorithm by name.
func LookupAlgorithm(name string) (*Algorithm, error) { return bilinear.Lookup(name) }

// DecodeAlgorithm parses and fully verifies an algorithm from JSON.
func DecodeAlgorithm(data []byte) (*Algorithm, error) { return bilinear.Decode(data) }

// EncodeAlgorithm serializes an algorithm to JSON.
func EncodeAlgorithm(alg *Algorithm) ([]byte, error) { return bilinear.Encode(alg) }

// Executor runs a bilinear algorithm as a conventional recursive
// divide-and-conquer multiplication with operation counting — the
// baseline the circuits are compared against.
type Executor = bilinear.Executor

// NewExecutor returns an executor with the given base-case cutoff.
func NewExecutor(alg *Algorithm, cutoff int) *Executor { return bilinear.NewExecutor(alg, cutoff) }

// Schedule is the increasing sequence of materialized recursion levels
// 0 = h_0 < ... < h_t = log_T N.
type Schedule = tctree.Schedule

// ConstantDepthSchedule returns the Theorem 4.5/4.9 schedule
// h_i = ⌈(1−γ^i)ρ⌉ with at most d transitions.
func ConstantDepthSchedule(gamma float64, height, d int) Schedule {
	return tctree.ConstantDepth(gamma, height, d)
}

// LogLogSchedule returns the Theorem 4.4/4.8 schedule with
// ⌊log_{1/γ} L⌋ + 1 transitions.
func LogLogSchedule(gamma float64, height int) Schedule { return tctree.LogLog(gamma, height) }

// UniformSchedule returns the weaker h_i = ⌈i·L/t⌉ ablation schedule.
func UniformSchedule(height, t int) Schedule { return tctree.Uniform(height, t) }

// DirectSchedule returns the single-jump {0, L} strawman schedule.
func DirectSchedule(height int) Schedule { return tctree.Direct(height) }

// Circuit is a threshold circuit: evaluation, size/depth/edges/fan-in
// measures, energy accounting, DOT export.
type Circuit = circuit.Circuit

// CircuitStats bundles a circuit's complexity measures.
type CircuitStats = circuit.Stats

// Evaluator is the batched, bit-sliced evaluation engine: built once
// per circuit, it evaluates B input vectors per call with 64 samples
// packed per machine word, reusing a persistent worker pool and
// preallocated scratch across calls. Results are bit-for-bit identical
// to Circuit.Eval.
type Evaluator = circuit.Evaluator

// Planes is a bit-packed batch of wire assignments (one bit plane per
// wire, 64 samples per word) — the zero-copy currency of the batch
// engine: pack inputs once, evaluate, gather output planes straight
// into the next circuit.
type Planes = circuit.Planes

// NewEvaluator builds a batch evaluation engine for c. workers <= 0
// selects GOMAXPROCS; workers == 1 stays fully sequential (no worker
// pool). Close the evaluator when done.
func NewEvaluator(c *Circuit, workers int) *Evaluator { return circuit.NewEvaluator(c, workers) }

// PackBools packs per-sample input rows into bit planes for
// Evaluator.EvalPlanes.
func PackBools(rows [][]bool) *Planes { return circuit.PackBools(rows) }

// Options configures circuit construction (algorithm, schedule or depth
// parameter d, entry bit width, signedness, fan-in grouping).
type Options = core.Options

// MatMulCircuit computes C = AB (Theorems 4.8/4.9).
type MatMulCircuit = core.MatMulCircuit

// TraceCircuit decides trace(A³) >= τ (Theorems 4.4/4.5).
type TraceCircuit = core.TraceCircuit

// TriangleCircuit is the Θ(N³) depth-2 baseline (Section 1).
type TriangleCircuit = core.TriangleCircuit

// NewMatMul builds the matrix product circuit for N x N inputs; N must
// be a power of the algorithm's T.
func NewMatMul(n int, opts Options) (*MatMulCircuit, error) { return core.BuildMatMul(n, opts) }

// NewTrace builds the trace-threshold circuit.
func NewTrace(n int, tau int64, opts Options) (*TraceCircuit, error) {
	return core.BuildTrace(n, tau, opts)
}

// NewNaiveTriangle builds the baseline triangle circuit: exactly
// C(N,3)+1 gates in depth 2.
func NewNaiveTriangle(n int, tau int64) (*TriangleCircuit, error) {
	return core.BuildNaiveTriangle(n, tau)
}

// GateEstimate itemizes predicted gate counts by construction phase.
type GateEstimate = counting.Estimate

// EstimateTraceGates predicts BuildTrace's gate count for N = T^L
// without materializing the circuit (sound upper bound).
func EstimateTraceGates(alg *Algorithm, entryBits, height int, sched Schedule) GateEstimate {
	return counting.EstimateTrace(alg, entryBits, height, sched)
}

// EstimateMatMulGates predicts BuildMatMul's gate count.
func EstimateMatMulGates(alg *Algorithm, entryBits, height int, sched Schedule) GateEstimate {
	return counting.EstimateMatMul(alg, entryBits, height, sched)
}

// TheoremExponent returns the paper's headline exponent ω + c·γ^d.
func TheoremExponent(alg *Algorithm, d int) float64 { return counting.TheoremExponent(alg, d) }

// NaiveTriangleGates returns C(N,3)+1.
func NaiveTriangleGates(n float64) float64 { return counting.NaiveTriangleGates(n) }

// Graph is a simple undirected graph with triangle/wedge/clustering
// analysis (Section 5).
type Graph = graph.Graph

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// GraphFromAdjacency validates and wraps a symmetric 0/1 matrix.
func GraphFromAdjacency(adj *Matrix) (*Graph, error) { return graph.FromAdjacency(adj) }

// ErdosRenyi samples G(n, p).
func ErdosRenyi(rng *rand.Rand, n int, p float64) *Graph { return graph.ErdosRenyi(rng, n, p) }

// PlantedCommunities samples a two-level community graph (BTER-like).
func PlantedCommunities(rng *rand.Rand, n, communities int, pIn, pOut float64) *Graph {
	return graph.PlantedCommunities(rng, n, communities, pIn, pOut)
}

// CompleteGraph returns K_n.
func CompleteGraph(n int) *Graph { return graph.Complete(n) }

// Image is an H x W x C integer image for the convolution substrate.
type Image = conv.Image

// Kernel is a q x q x C convolution filter.
type Kernel = conv.Kernel

// NewImage allocates a zero image.
func NewImage(h, w, c int) *Image { return conv.NewImage(h, w, c) }

// NewKernel allocates a zero kernel.
func NewKernel(q, c int) *Kernel { return conv.NewKernel(q, c) }

// ConvDirect computes patch-kernel scores by definition.
func ConvDirect(im *Image, kernels []*Kernel, stride int) (*Matrix, error) {
	return conv.Direct(im, kernels, stride)
}

// ConvResult is the circuit convolution output with complexity stats.
type ConvResult = conv.CircuitResult

// ConvViaCircuit computes a convolution layer through threshold matmul
// circuits, optionally partitioned into row blocks of maxRows to bound
// fan-in (Section 5). maxRows <= 0 disables partitioning.
func ConvViaCircuit(im *Image, kernels []*Kernel, stride int, opts Options, maxRows int) (*ConvResult, error) {
	return conv.ViaCircuit(im, kernels, stride, opts, maxRows)
}

// Device is a neuromorphic chip profile for deployment simulation.
type Device = neuro.Device

// DeviceStats aggregates one simulated inference.
type DeviceStats = neuro.RunStats

// TrueNorthDevice returns a TrueNorth-like profile (256 neurons/core,
// fan-in 256).
func TrueNorthDevice() Device { return neuro.TrueNorthish() }

// LoihiDevice returns a Loihi-like profile (1024 neurons/core, fan-in
// 4096).
func LoihiDevice() Device { return neuro.Loihiish() }

// UnlimitedDevice returns an idealized unconstrained device.
func UnlimitedDevice() Device { return neuro.Unlimited() }

// Deploy places a circuit on a device and runs one inference, returning
// the wire values and execution statistics (timesteps, spikes, energy,
// core traffic).
func Deploy(c *Circuit, d Device, inputs []bool) ([]bool, DeviceStats, error) {
	return neuro.Deploy(c, d, inputs)
}

// Certificate is a machine-readable verification record: structural
// invariants plus the paper's closed-form depth/size/magnitude bounds
// checked against one built circuit.
type Certificate = verify.Certificate

// CertifyParams describe a construction to the bound certifier.
type CertifyParams = verify.Params

// StructuralReport is the result of re-deriving a circuit's
// levelization, acyclicity, fan-in, edge and magnitude figures from its
// wire lists.
type StructuralReport = verify.StructuralReport

// Certify checks a circuit against the structural invariants and the
// theorem bounds for the claimed construction parameters.
func Certify(c *Circuit, p CertifyParams) (*Certificate, error) { return verify.Certify(c, p) }

// VerifyStructure runs only the structural verifier with default
// options.
func VerifyStructure(c *Circuit) *StructuralReport {
	return verify.Structural(c, verify.StructuralOptions{RequireOutputs: true})
}

// CertifyMatMul certifies a built matmul circuit against Theorem 4.9
// and the Lemma 4.2 magnitude bounds.
func CertifyMatMul(mc *MatMulCircuit) (*Certificate, error) { return verify.CertifyMatMul(mc) }

// CertifyTrace certifies a built trace circuit against Theorems 4.4/4.5.
func CertifyTrace(tc *TraceCircuit) (*Certificate, error) { return verify.CertifyTrace(tc) }

// CertifyCount certifies a built exact-count circuit.
func CertifyCount(cc *CountCircuit) (*Certificate, error) { return verify.CertifyCount(cc) }

// CertifyTriangle certifies the naive baseline against its Section 1
// description (exactly C(N,3)+1 gates, depth 2).
func CertifyTriangle(t *TriangleCircuit) (*Certificate, error) { return verify.CertifyTriangle(t) }
