package tcmm_test

import (
	"math/rand"
	"testing"

	tcmm "repro"
)

// End-to-end through the public facade only: the full pipeline a user
// would write.
func TestFacadeMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mc, err := tcmm.NewMatMul(4, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	a := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	b := tcmm.RandomBinaryMatrix(rng, 4, 4, 0.5)
	got, err := mc.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a.Mul(b)) {
		t.Error("facade matmul wrong")
	}
	if mc.Circuit.Depth() > mc.DepthBound() {
		t.Error("depth bound violated")
	}
}

func TestFacadeTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := tcmm.ErdosRenyi(rng, 8, 0.5)
	want := g.Triangles()

	tc, err := tcmm.NewTrace(8, 6*want, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tc.Decide(g.Adjacency())
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("trace circuit missed its own triangle count")
	}

	naive, err := tcmm.NewNaiveTriangle(8, want)
	if err != nil {
		t.Fatal(err)
	}
	gotNaive, err := naive.Decide(g.Adjacency())
	if err != nil {
		t.Fatal(err)
	}
	if !gotNaive {
		t.Error("naive circuit missed its own triangle count")
	}
}

func TestFacadeSchedulesAndParams(t *testing.T) {
	p := tcmm.Strassen().Params()
	if p.S != 12 {
		t.Errorf("Strassen sparsity %d, want 12", p.S)
	}
	s := tcmm.ConstantDepthSchedule(p.Gamma, 10, 3)
	if err := s.Validate(10); err != nil {
		t.Error(err)
	}
	if tcmm.TheoremExponent(tcmm.Strassen(), 5) >= 3 {
		t.Error("exponent at d=5 should be subcubic")
	}
	est := tcmm.EstimateTraceGates(tcmm.Strassen(), 1, 10, s)
	if est.Total() <= 0 {
		t.Error("estimate not positive")
	}
}

func TestFacadeDeploy(t *testing.T) {
	tc, err := tcmm.NewTrace(4, 6, tcmm.Options{Alg: tcmm.Strassen()})
	if err != nil {
		t.Fatal(err)
	}
	g := tcmm.CompleteGraph(4)
	adj := g.Adjacency()
	in, err := tc.Assign(adj)
	if err != nil {
		t.Fatal(err)
	}
	vals, stats, err := tcmm.Deploy(tc.Circuit, tcmm.UnlimitedDevice(), in)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Timesteps != tc.Circuit.Depth() || stats.Spikes <= 0 {
		t.Errorf("deploy stats wrong: %+v", stats)
	}
	if len(vals) != tc.Circuit.NumInputs()+tc.Circuit.Size() {
		t.Error("wire values wrong length")
	}
}

func TestFacadeConv(t *testing.T) {
	im := tcmm.NewImage(4, 4, 1)
	for i := 0; i < 16; i++ {
		im.Set(i/4, i%4, 0, int64(i%3))
	}
	k := tcmm.NewKernel(2, 1)
	k.Set(0, 0, 0, 1)
	k.Set(1, 1, 0, -1)
	direct, err := tcmm.ConvDirect(im, []*tcmm.Kernel{k}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tcmm.ConvViaCircuit(im, []*tcmm.Kernel{k}, 2, tcmm.Options{Alg: tcmm.Strassen()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Scores.Equal(direct) {
		t.Error("facade conv wrong")
	}
}

func TestFacadeAlgorithmRoundTrip(t *testing.T) {
	data, err := tcmm.EncodeAlgorithm(tcmm.Winograd())
	if err != nil {
		t.Fatal(err)
	}
	alg, err := tcmm.DecodeAlgorithm(data)
	if err != nil {
		t.Fatal(err)
	}
	if alg.R != 7 {
		t.Error("round trip lost algorithm")
	}
	if _, err := tcmm.LookupAlgorithm("strassen2"); err != nil {
		t.Error(err)
	}
	if len(tcmm.Algorithms()) < 4 {
		t.Error("registry too small")
	}
	c := tcmm.ComposeAlgorithms(tcmm.Strassen(), tcmm.NaiveAlgorithm())
	if err := c.Verify(); err != nil {
		t.Error(err)
	}
}

func TestFacadeExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := tcmm.NewExecutor(tcmm.Strassen(), 1)
	a := tcmm.RandomMatrix(rng, 8, 8, -9, 9)
	b := tcmm.RandomMatrix(rng, 8, 8, -9, 9)
	got, err := e.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a.Mul(b)) {
		t.Error("executor wrong through facade")
	}
	if e.Ops().ScalarMuls != 343 {
		t.Errorf("op count %d, want 343", e.Ops().ScalarMuls)
	}
}
